"""Site policy engines: how an OSN treats registered minors.

This module encodes, as executable policy, the behaviour the paper
documents for Facebook (Table 1, Section 3.1) and Google+ (Table 6,
Appendix A):

* a minimum registration age (13, the COPPA-avoidance ban);
* what a registered minor's profile can ever expose to strangers,
  regardless of the minor's own settings;
* whether registered minors appear in people search by school/city;
* whether strangers see a "Message" button on a minor's profile.

The policies are *data plus a small amount of logic*, so the analysis
layer can regenerate the paper's policy tables (1 and 6) directly from
the same object the simulator enforces — the table is then guaranteed to
describe actual behaviour, not documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from .errors import PolicyError
from .privacy import (
    MINIMAL_FIELDS,
    Audience,
    PrivacySettings,
    ProfileField,
    Relationship,
)
from .user import Account


@dataclass(frozen=True)
class SitePolicy:
    """Immutable description of an OSN's minor-protection rules.

    Parameters
    ----------
    name:
        Human-readable site name ("facebook", "googleplus").
    minimum_registration_age:
        Registrations with a registered age below this are rejected
        (the COPPA-avoidance ban; 13 for both sites studied).
    adult_age:
        Users at or above this *registered* age are registered adults.
    minor_stranger_cap:
        Fields a registered minor's profile may expose to strangers, at
        most.  For Facebook this is the minimal-information set; for
        Google+ it is much wider (minors may opt into sharing school,
        city, relationship, photos, even phone numbers publicly).
    minor_nonstranger_cap_audience:
        The widest audience a minor may select for non-minimal fields.
        Facebook caps minors at friends-of-friends.
    minors_in_school_search:
        Whether people search by school/city returns registered minors.
        ``False`` for both sites — the precaution the attack circumvents.
    minors_messageable_by_strangers:
        Whether strangers ever see the "Message" button on a registered
        minor's profile.  ``False`` on Facebook.
    minors_in_public_search:
        Whether a registered minor may enable public-search indexing.
    default_minor_settings / default_adult_settings:
        The settings a fresh account receives, used both by the world
        generator and to regenerate the "default" columns of the policy
        tables.
    """

    name: str
    minimum_registration_age: float
    adult_age: float
    minor_stranger_cap: FrozenSet[ProfileField]
    minor_nonstranger_cap_audience: Audience
    minors_in_school_search: bool
    minors_messageable_by_strangers: bool
    minors_in_public_search: bool
    default_minor_settings: PrivacySettings
    default_adult_settings: PrivacySettings

    # ------------------------------------------------------------------
    # Registration / classification
    # ------------------------------------------------------------------
    def registration_allowed(self, registered_age: float) -> bool:
        """Whether an account with this registered age may be created."""
        return registered_age >= self.minimum_registration_age

    def is_registered_minor(self, account: Account, now_year: float) -> bool:
        return account.is_registered_minor(now_year, adult_age=self.adult_age)

    # ------------------------------------------------------------------
    # Field visibility
    # ------------------------------------------------------------------
    def effective_audience(
        self, account: Account, field_: ProfileField, now_year: float
    ) -> Audience:
        """The audience a field is actually shared with, after policy caps.

        For registered adults the user's setting stands.  For registered
        minors the site caps every field: fields outside
        ``minor_stranger_cap`` can never reach strangers, so their
        effective audience is at most ``minor_nonstranger_cap_audience``.
        """
        chosen = account.settings.audience_for(field_)
        if not self.is_registered_minor(account, now_year):
            return chosen
        if field_ in self.minor_stranger_cap:
            return chosen
        return min(chosen, self.minor_nonstranger_cap_audience)

    def field_visible_to(
        self,
        account: Account,
        field_: ProfileField,
        relationship: Relationship,
        now_year: float,
    ) -> bool:
        """Whether a viewer with ``relationship`` sees ``field_``."""
        audience = self.effective_audience(account, field_, now_year)
        return relationship.satisfies(audience)

    def message_button_visible(
        self, account: Account, relationship: Relationship, now_year: float
    ) -> bool:
        """Whether the viewer sees the "Message" button.

        Table 5 reports the Message link for minors registered as adults;
        for registered minors the button is *never* shown to strangers
        (Section 3.1).
        """
        if relationship is Relationship.SELF:
            return False
        is_minor = self.is_registered_minor(account, now_year)
        if (
            is_minor
            and not self.minors_messageable_by_strangers
            and relationship in (Relationship.STRANGER, Relationship.NETWORK_MEMBER)
        ):
            return False
        return relationship.satisfies(account.settings.message_audience)

    # ------------------------------------------------------------------
    # Search eligibility
    # ------------------------------------------------------------------
    def school_search_eligible(self, account: Account, now_year: float) -> bool:
        """Whether people search by school/city may return this account.

        The paper verified with ground truth that neither the Find
        Friends Portal nor Graph Search ever returns registered minors.
        """
        if account.disabled:
            return False
        if self.is_registered_minor(account, now_year):
            return self.minors_in_school_search
        return account.settings.public_search

    def public_search_eligible(self, account: Account, now_year: float) -> bool:
        """Whether external search engines may index this profile."""
        if account.disabled or not account.settings.public_search:
            return False
        if self.is_registered_minor(account, now_year):
            return self.minors_in_public_search
        return True

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Sanity-check internal consistency (used by tests)."""
        if self.minimum_registration_age > self.adult_age:
            raise PolicyError(
                f"{self.name}: minimum registration age above adult age"
            )
        if not MINIMAL_FIELDS <= self.minor_stranger_cap:
            raise PolicyError(
                f"{self.name}: minimal fields must be stranger-visible for minors"
            )


# ----------------------------------------------------------------------
# Concrete policies
# ----------------------------------------------------------------------

def facebook_policy() -> SitePolicy:
    """Facebook's 2012/2013 minor policy as documented in the paper.

    A stranger visiting a registered minor's profile sees at most name,
    profile photo, networks and gender; the Message button is never
    shown; minors never appear in school/city search or public search
    (Section 3.1, Table 1).
    """
    return SitePolicy(
        name="facebook",
        minimum_registration_age=13.0,
        adult_age=18.0,
        minor_stranger_cap=frozenset(MINIMAL_FIELDS),
        minor_nonstranger_cap_audience=Audience.FRIENDS_OF_FRIENDS,
        minors_in_school_search=False,
        minors_messageable_by_strangers=False,
        minors_in_public_search=False,
        default_minor_settings=PrivacySettings.facebook_minor_default_2012(),
        default_adult_settings=PrivacySettings.facebook_adult_default_2012(),
    )


def googleplus_policy() -> SitePolicy:
    """Google+'s minor policy as documented in Appendix A (Table 6).

    Google+ defaults are protective, but unlike Facebook a minor *may*
    opt into exposing school, hometown, city, relationship, photos,
    circles and even phone numbers publicly (the worst-case column of
    Table 6 has many checks for registered minors).  Minors are still
    excluded from search by school.
    """
    minor_cap = frozenset(
        set(MINIMAL_FIELDS)
        | {
            ProfileField.EMPLOYER,
            ProfileField.HIGH_SCHOOL,
            ProfileField.HOMETOWN,
            ProfileField.CURRENT_CITY,
            ProfileField.RELATIONSHIP,
            ProfileField.INTERESTED_IN,
            ProfileField.BIRTHDAY,
            ProfileField.PHOTOS,
            ProfileField.CONTACT_INFO,
            ProfileField.CIRCLES,
        }
    )
    minor_defaults = PrivacySettings(
        audiences={
            ProfileField.NAME: Audience.PUBLIC,
            ProfileField.PROFILE_PHOTO: Audience.PUBLIC,
        },
        default=Audience.FRIENDS,  # "your circles"
        public_search=False,
        message_audience=Audience.FRIENDS,
    )
    adult_defaults = PrivacySettings(
        audiences={
            ProfileField.NAME: Audience.PUBLIC,
            ProfileField.PROFILE_PHOTO: Audience.PUBLIC,
            ProfileField.GENDER: Audience.PUBLIC,
            ProfileField.EMPLOYER: Audience.PUBLIC,
            ProfileField.HIGH_SCHOOL: Audience.PUBLIC,
            ProfileField.HOMETOWN: Audience.PUBLIC,
            ProfileField.CURRENT_CITY: Audience.PUBLIC,
            ProfileField.CIRCLES: Audience.PUBLIC,
        },
        default=Audience.FRIENDS,
        public_search=True,
        message_audience=Audience.PUBLIC,
    )
    return SitePolicy(
        name="googleplus",
        minimum_registration_age=13.0,
        adult_age=18.0,
        minor_stranger_cap=minor_cap,
        minor_nonstranger_cap_audience=Audience.PUBLIC,
        minors_in_school_search=False,
        minors_messageable_by_strangers=False,
        minors_in_public_search=True,
        default_minor_settings=minor_defaults,
        default_adult_settings=adult_defaults,
    )


def policy_by_name(name: str) -> SitePolicy:
    """Look up a built-in policy by site name."""
    policies = {"facebook": facebook_policy, "googleplus": googleplus_policy}
    try:
        return policies[name]()
    except KeyError:
        raise PolicyError(f"unknown site policy: {name!r}") from None
