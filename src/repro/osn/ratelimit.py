"""Anti-crawling defence: per-account request rate limiting.

Real OSNs temporarily or permanently disable accounts that fetch too
many pages too quickly (paper, Section 4.5); the attacker must therefore
pace requests and spread them over multiple accounts.  We model this
with a sliding-window limiter driven by the simulated clock:

* more than ``max_requests`` GETs inside ``window_seconds`` earns a
  *strike* and a :class:`~repro.osn.errors.RateLimitedError`;
* ``strikes_to_disable`` strikes permanently disables the account
  (:class:`~repro.osn.errors.AccountDisabledError` thereafter).

A polite crawler that sleeps between requests (simulated time) never
trips it; an aggressive one loses its accounts, exactly the trade-off
the paper's "measurement effort" discussion is about.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Optional

from .clock import SimClock
from .errors import AccountDisabledError, RateLimitedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.telemetry.runtime import Telemetry


@dataclass(frozen=True)
class RateLimitConfig:
    """Tuning knobs for the sliding-window limiter."""

    max_requests: int = 30
    window_seconds: float = 60.0
    strikes_to_disable: int = 3

    def validate(self) -> None:
        if self.max_requests <= 0:
            raise ValueError("max_requests must be positive")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.strikes_to_disable <= 0:
            raise ValueError("strikes_to_disable must be positive")


@dataclass
class _AccountState:
    timestamps: Deque[float] = field(default_factory=deque)
    strikes: int = 0
    disabled: bool = False


class RateLimiter:
    """Sliding-window limiter over simulated time, per account."""

    def __init__(
        self,
        clock: SimClock,
        config: RateLimitConfig | None = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self.clock = clock
        self.config = config or RateLimitConfig()
        self.config.validate()
        self._states: Dict[int, _AccountState] = {}
        self.telemetry = telemetry
        if telemetry is not None:
            self._init_metrics(telemetry)

    def set_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        self.telemetry = telemetry
        if telemetry is not None:
            self._init_metrics(telemetry)

    def _init_metrics(self, telemetry: "Telemetry") -> None:
        self._strikes_metric = telemetry.registry.counter(
            "ratelimit_strikes_total",
            "Rate-limit strikes earned, per crawl account",
            labelnames=("account",),
        )
        self._disabled_metric = telemetry.registry.counter(
            "ratelimit_accounts_disabled_total",
            "Accounts permanently disabled for aggressive crawling",
        )

    def check(self, account_id: int) -> None:
        """Record one request; raise if the account is over its budget."""
        state = self._states.setdefault(account_id, _AccountState())
        if state.disabled:
            raise AccountDisabledError(
                f"account {account_id} disabled for aggressive crawling"
            )
        now = self.clock.seconds()
        horizon = now - self.config.window_seconds
        stamps = state.timestamps
        while stamps and stamps[0] <= horizon:
            stamps.popleft()
        if len(stamps) >= self.config.max_requests:
            state.strikes += 1
            telemetry = self.telemetry
            if state.strikes >= self.config.strikes_to_disable:
                state.disabled = True
                if telemetry is not None:
                    self._strikes_metric.labels(account=str(account_id)).inc()
                    self._disabled_metric.labels().inc()
                    telemetry.emit(
                        "account_disabled", account=account_id, strikes=state.strikes
                    )
                raise AccountDisabledError(
                    f"account {account_id} disabled after {state.strikes} strikes"
                )
            retry_after = max((stamps[0] + self.config.window_seconds) - now, 0.1)
            if telemetry is not None:
                self._strikes_metric.labels(account=str(account_id)).inc()
                telemetry.emit(
                    "strike",
                    account=account_id,
                    strikes=state.strikes,
                    retry_after=retry_after,
                )
            raise RateLimitedError(
                f"account {account_id} over rate limit", retry_after=retry_after
            )
        stamps.append(now)

    def is_disabled(self, account_id: int) -> bool:
        state = self._states.get(account_id)
        return state is not None and state.disabled

    def strikes(self, account_id: int) -> int:
        state = self._states.get(account_id)
        return 0 if state is None else state.strikes

    def requests_in_window(self, account_id: int) -> int:
        state = self._states.get(account_id)
        if state is None:
            return 0
        horizon = self.clock.seconds() - self.config.window_seconds
        return sum(1 for t in state.timestamps if t > horizon)
