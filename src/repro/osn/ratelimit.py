"""Anti-crawling defence: per-account request rate limiting.

Real OSNs temporarily or permanently disable accounts that fetch too
many pages too quickly (paper, Section 4.5); the attacker must therefore
pace requests and spread them over multiple accounts.  We model this
with a sliding-window limiter driven by the simulated clock:

* more than ``max_requests`` GETs inside ``window_seconds`` earns a
  *strike* and a :class:`~repro.osn.errors.RateLimitedError`;
* ``strikes_to_disable`` strikes permanently disables the account
  (:class:`~repro.osn.errors.AccountDisabledError` thereafter).

A polite crawler that sleeps between requests (simulated time) never
trips it; an aggressive one loses its accounts, exactly the trade-off
the paper's "measurement effort" discussion is about.

Concurrency shape: all sliding-window state lives on
:class:`AccountRateLimiter`, one instance per account, handed out by
``RateLimiter._limiter_for`` — so concurrent sessions on different
accounts never touch each other's windows, and the only cross-account
write is the registry insert (annotated for SHARE001).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Optional

from .clock import SimClock
from .errors import AccountDisabledError, RateLimitedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.telemetry.runtime import Telemetry


@dataclass(frozen=True)
class RateLimitConfig:
    """Tuning knobs for the sliding-window limiter."""

    max_requests: int = 30
    window_seconds: float = 60.0
    strikes_to_disable: int = 3

    def validate(self) -> None:
        if self.max_requests <= 0:
            raise ValueError("max_requests must be positive")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.strikes_to_disable <= 0:
            raise ValueError("strikes_to_disable must be positive")


@dataclass(frozen=True)
class ChargeOutcome:
    """Result of charging one request against one account's window."""

    status: str  # "ok" | "throttled" | "disabled" | "already_disabled"
    retry_after: float = 0.0
    strikes: int = 0


class AccountRateLimiter:
    """Sliding-window state for *one* account.

    Everything mutable in the rate-limit path lives here, keyed per
    account by :class:`RateLimiter`, so sessions crawling with
    different accounts share no window/strike state.
    """

    def __init__(self, clock: SimClock, config: RateLimitConfig) -> None:
        self.clock = clock
        self.config = config
        self.timestamps: Deque[float] = deque()
        self.strikes = 0
        self.disabled = False
        self.served = 0

    def charge(self) -> ChargeOutcome:
        """Charge one request against this account's window."""
        if self.disabled:
            return ChargeOutcome("already_disabled", strikes=self.strikes)
        now = self.clock.seconds()
        horizon = now - self.config.window_seconds
        stamps = self.timestamps
        while stamps and stamps[0] <= horizon:
            stamps.popleft()
        if len(stamps) >= self.config.max_requests:
            self.strikes += 1
            if self.strikes >= self.config.strikes_to_disable:
                self.disabled = True
                return ChargeOutcome("disabled", strikes=self.strikes)
            retry_after = max((stamps[0] + self.config.window_seconds) - now, 0.1)
            return ChargeOutcome(
                "throttled", retry_after=retry_after, strikes=self.strikes
            )
        stamps.append(now)
        self.served += 1
        return ChargeOutcome("ok", strikes=self.strikes)

    def requests_in_window(self) -> int:
        horizon = self.clock.seconds() - self.config.window_seconds
        return sum(1 for t in self.timestamps if t > horizon)


class RateLimiter:
    """Per-account sliding-window limiters over simulated time."""

    def __init__(
        self,
        clock: SimClock,
        config: RateLimitConfig | None = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self.clock = clock
        self.config = config or RateLimitConfig()
        self.config.validate()
        self._accounts: Dict[int, AccountRateLimiter] = {}
        self.telemetry = telemetry
        if telemetry is not None:
            self._init_metrics(telemetry)

    def set_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        self.telemetry = telemetry
        if telemetry is not None:
            self._init_metrics(telemetry)

    def _init_metrics(self, telemetry: "Telemetry") -> None:
        self._strikes_metric = telemetry.registry.counter(
            "ratelimit_strikes_total",
            "Rate-limit strikes earned, per crawl account",
            labelnames=("account",),
        )
        self._disabled_metric = telemetry.registry.counter(
            "ratelimit_accounts_disabled_total",
            "Accounts permanently disabled for aggressive crawling",
        )

    def _limiter_for(self, account_id: int) -> AccountRateLimiter:
        """The per-account limiter, created on first sight."""
        limiter = self._accounts.get(account_id)
        if limiter is None:
            limiter = AccountRateLimiter(self.clock, self.config)
            self._accounts[account_id] = limiter  # repro-lint: shared(RateLimiter) -- first-sight registry insert; per-account windows live on the inserted object
        return limiter

    def check(self, account_id: int) -> None:
        """Record one request; raise if the account is over its budget."""
        outcome = self._limiter_for(account_id).charge()
        if outcome.status == "ok":
            return
        if outcome.status == "already_disabled":
            raise AccountDisabledError(
                f"account {account_id} disabled for aggressive crawling"
            )
        telemetry = self.telemetry
        if outcome.status == "disabled":
            if telemetry is not None:
                self._strikes_metric.labels(account=str(account_id)).inc()
                self._disabled_metric.labels().inc()
                telemetry.emit(
                    "account_disabled", account=account_id, strikes=outcome.strikes
                )
            raise AccountDisabledError(
                f"account {account_id} disabled after {outcome.strikes} strikes"
            )
        if telemetry is not None:
            self._strikes_metric.labels(account=str(account_id)).inc()
            telemetry.emit(
                "strike",
                account=account_id,
                strikes=outcome.strikes,
                retry_after=outcome.retry_after,
            )
        raise RateLimitedError(
            f"account {account_id} over rate limit", retry_after=outcome.retry_after
        )

    @property
    def total_served(self) -> int:
        """Requests that passed the limiter, across every account."""
        return sum(limiter.served for limiter in self._accounts.values())

    def is_disabled(self, account_id: int) -> bool:
        limiter = self._accounts.get(account_id)
        return limiter is not None and limiter.disabled

    def strikes(self, account_id: int) -> int:
        limiter = self._accounts.get(account_id)
        return 0 if limiter is None else limiter.strikes

    def requests_in_window(self, account_id: int) -> int:
        limiter = self._accounts.get(account_id)
        return 0 if limiter is None else limiter.requests_in_window()
