"""HTML rendering and parsing for every page type the OSN serves.

The paper's crawler downloads HTML and extracts data with a parser
(Section 3.2).  To exercise that same pipeline we render each
:class:`~repro.osn.view.ProfileView`, friend-list page and search page
to compact HTML, and provide the matching parsers the crawler uses.
Render/parse pairs are round-trip tested (including via hypothesis) so
the crawler provably recovers exactly what the site exposed.

The markup is deliberately regular (class names + ``data-`` attributes)
— we are reproducing an attack pipeline, not 2012 Facebook's markup —
but all structured values travel through real HTML escaping, so names
containing ``&``, ``<`` or quotes survive the trip.
"""

from __future__ import annotations

import html
import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .errors import ParseError
from .network import DirectoryEntry, School
from .profile import Gender, SchoolAffiliation
from .view import ProfileView, WallPostView

_SITE_NAME = "FaceSpace"


# ----------------------------------------------------------------------
# Small helpers
# ----------------------------------------------------------------------

def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _unesc(value: str) -> str:
    return html.unescape(value)


def _shell(title: str, body: str) -> str:
    return (
        f"<html><head><title>{_esc(title)} | {_SITE_NAME}</title></head>"
        f"<body>{body}</body></html>"
    )


def _find(pattern: str, text: str) -> Optional[re.Match]:
    return re.search(pattern, text, re.DOTALL)


def _require(pattern: str, text: str, what: str) -> re.Match:
    match = _find(pattern, text)
    if match is None:
        raise ParseError(f"could not locate {what} in page")
    return match


# ----------------------------------------------------------------------
# Profile page
# ----------------------------------------------------------------------

def render_profile_page(view: ProfileView) -> str:
    """Render a profile view to HTML exactly as the viewer would see it."""
    parts: List[str] = [f'<div id="profile" data-uid="{view.user_id}">']
    parts.append(f'<h1 class="name">{_esc(view.name)}</h1>')
    if view.has_profile_photo:
        parts.append(f'<img class="profile-photo" src="/photo/{view.user_id}.jpg"/>')
    if view.gender is not None:
        parts.append(f'<span class="gender">{_esc(view.gender.value)}</span>')
    for network in view.networks:
        parts.append(f'<span class="network">{_esc(network)}</span>')
    if view.high_schools:
        parts.append('<ul class="schools">')
        for aff in view.high_schools:
            year = "" if aff.graduation_year is None else str(aff.graduation_year)
            parts.append(
                f'<li class="school" data-school-id="{aff.school_id}" '
                f'data-year="{year}">{_esc(aff.school_name)}</li>'
            )
        parts.append("</ul>")
    if view.relationship_status is not None:
        parts.append(
            f'<span class="relationship">{_esc(view.relationship_status)}</span>'
        )
    if view.interested_in is not None:
        parts.append(f'<span class="interested-in">{_esc(view.interested_in)}</span>')
    if view.birthday_year is not None:
        parts.append(f'<span class="birthday-year">{view.birthday_year}</span>')
    if view.hometown is not None:
        parts.append(f'<span class="hometown">{_esc(view.hometown)}</span>')
    if view.current_city is not None:
        parts.append(f'<span class="current-city">{_esc(view.current_city)}</span>')
    if view.employer is not None:
        parts.append(f'<span class="employer">{_esc(view.employer)}</span>')
    if view.graduate_school is not None:
        parts.append(
            f'<span class="graduate-school">{_esc(view.graduate_school)}</span>'
        )
    if view.photo_count is not None:
        parts.append(f'<span class="photo-count">{view.photo_count}</span>')
    if view.wall_post_count is not None:
        parts.append(f'<span class="wall-count">{view.wall_post_count}</span>')
    if view.wall_posts:
        parts.append('<ul class="wall">')
        parts.extend(
            f'<li class="wall-post" data-author="{post.author_id}">'
            f"{_esc(post.text)}</li>"
            for post in view.wall_posts
        )
        parts.append("</ul>")
    if view.contact_email is not None:
        parts.append(f'<span class="contact-email">{_esc(view.contact_email)}</span>')
    if view.contact_phone is not None:
        parts.append(f'<span class="contact-phone">{_esc(view.contact_phone)}</span>')
    if view.friend_list_visible:
        parts.append(
            f'<a class="friends-link" href="/profile/{view.user_id}/friends">Friends</a>'
        )
    if view.message_button:
        parts.append(
            f'<a class="message-link" href="/messages/new?to={view.user_id}">Message</a>'
        )
    if view.public_search_listed:
        parts.append('<meta class="public-search" content="enabled"/>')
    parts.append("</div>")
    return _shell(view.name, "".join(parts))


def parse_profile_page(page: str) -> ProfileView:
    """Parse a profile page back into a :class:`ProfileView`.

    The crawler sees only this reconstruction; fields absent from the
    HTML come back as ``None``/empty, exactly like the original view.
    """
    uid_match = _require(r'<div id="profile" data-uid="(\d+)">', page, "profile div")
    user_id = int(uid_match.group(1))
    name = _unesc(_require(r'<h1 class="name">(.*?)</h1>', page, "name").group(1))

    gender_match = _find(r'<span class="gender">(.*?)</span>', page)
    gender = Gender(_unesc(gender_match.group(1))) if gender_match else None

    networks = tuple(
        _unesc(m)
        for m in re.findall(r'<span class="network">(.*?)</span>', page, re.DOTALL)
    )

    schools: List[SchoolAffiliation] = []
    for sid, year, sname in re.findall(
        r'<li class="school" data-school-id="(\d+)" data-year="(\d*)">(.*?)</li>',
        page,
        re.DOTALL,
    ):
        schools.append(
            SchoolAffiliation(
                school_id=int(sid),
                school_name=_unesc(sname),
                graduation_year=int(year) if year else None,
            )
        )

    def span(cls: str) -> Optional[str]:
        match = _find(rf'<span class="{cls}">(.*?)</span>', page)
        return _unesc(match.group(1)) if match else None

    def int_span(cls: str) -> Optional[int]:
        value = span(cls)
        return int(value) if value is not None else None

    wall_posts = tuple(
        WallPostView(int(author), _unesc(text))
        for author, text in re.findall(
            r'<li class="wall-post" data-author="(\d+)">(.*?)</li>', page, re.DOTALL
        )
    )

    return ProfileView(
        user_id=user_id,
        name=name,
        gender=gender,
        networks=networks,
        has_profile_photo='class="profile-photo"' in page,
        high_schools=tuple(schools),
        relationship_status=span("relationship"),
        interested_in=span("interested-in"),
        birthday_year=int_span("birthday-year"),
        hometown=span("hometown"),
        current_city=span("current-city"),
        employer=span("employer"),
        graduate_school=span("graduate-school"),
        photo_count=int_span("photo-count"),
        wall_post_count=int_span("wall-count"),
        wall_posts=wall_posts,
        contact_email=span("contact-email"),
        contact_phone=span("contact-phone"),
        friend_list_visible='class="friends-link"' in page,
        message_button='class="message-link"' in page,
        public_search_listed='class="public-search"' in page,
    )


# ----------------------------------------------------------------------
# Listing pages (friend lists and search results share a row format)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ListingPage:
    """A parsed page of user rows with pagination metadata."""

    total: int
    offset: int
    entries: Tuple[DirectoryEntry, ...]

    @property
    def next_offset(self) -> Optional[int]:
        after = self.offset + len(self.entries)
        return after if after < self.total else None


def _render_rows(entries: Sequence[DirectoryEntry]) -> str:
    rows = [
        f'<li class="user-row" data-uid="{e.user_id}">'
        f'<a href="/profile/{e.user_id}">{_esc(e.name)}</a></li>'
        for e in entries
    ]
    return "".join(rows)


def _parse_rows(page: str) -> Tuple[DirectoryEntry, ...]:
    return tuple(
        DirectoryEntry(int(uid), _unesc(name))
        for uid, name in re.findall(
            r'<li class="user-row" data-uid="(\d+)"><a href="/profile/\d+">(.*?)</a></li>',
            page,
            re.DOTALL,
        )
    )


def _render_listing(
    kind: str, title: str, total: int, offset: int, entries: Sequence[DirectoryEntry]
) -> str:
    body = (
        f'<div class="{kind}" data-total="{total}" data-offset="{offset}">'
        f"<ul>{_render_rows(entries)}</ul></div>"
    )
    return _shell(title, body)


def _parse_listing(kind: str, page: str) -> ListingPage:
    match = _require(
        rf'<div class="{kind}" data-total="(\d+)" data-offset="(\d+)">',
        page,
        f"{kind} listing",
    )
    return ListingPage(
        total=int(match.group(1)),
        offset=int(match.group(2)),
        entries=_parse_rows(page),
    )


def render_friends_page(
    owner_id: int, total: int, offset: int, entries: Sequence[DirectoryEntry]
) -> str:
    return _render_listing("friend-list", f"Friends of user {owner_id}", total, offset, entries)


def parse_friends_page(page: str) -> ListingPage:
    return _parse_listing("friend-list", page)


def render_search_page(
    total: int, offset: int, entries: Sequence[DirectoryEntry]
) -> str:
    return _render_listing("search-results", "People search", total, offset, entries)


def parse_search_page(page: str) -> ListingPage:
    return _parse_listing("search-results", page)


# ----------------------------------------------------------------------
# School directory page
# ----------------------------------------------------------------------

def render_school_page(school: School) -> str:
    hint = "" if school.enrollment_hint is None else str(school.enrollment_hint)
    body = (
        f'<div class="school-info" data-school-id="{school.school_id}" '
        f'data-enrollment="{hint}">'
        f'<h1 class="school-name">{_esc(school.name)}</h1>'
        f'<span class="school-city">{_esc(school.city)}</span></div>'
    )
    return _shell(school.name, body)


def parse_school_page(page: str) -> School:
    match = _require(
        r'<div class="school-info" data-school-id="(\d+)" data-enrollment="(\d*)">',
        page,
        "school info",
    )
    name = _unesc(_require(r'<h1 class="school-name">(.*?)</h1>', page, "school name").group(1))
    city = _unesc(_require(r'<span class="school-city">(.*?)</span>', page, "school city").group(1))
    enrollment = match.group(2)
    return School(
        school_id=int(match.group(1)),
        name=name,
        city=city,
        enrollment_hint=int(enrollment) if enrollment else None,
    )


# ----------------------------------------------------------------------
# Action confirmation pages (message sent, friend request sent)
# ----------------------------------------------------------------------

def render_action_page(kind: str, target_id: int) -> str:
    body = f'<div class="action" data-kind="{_esc(kind)}" data-target="{target_id}"></div>'
    return _shell(kind, body)


def parse_action_page(page: str) -> Tuple[str, int]:
    """Parse a confirmation page into (kind, target user id)."""
    match = _require(
        r'<div class="action" data-kind="([^"]+)" data-target="(\d+)">', page, "action"
    )
    return _unesc(match.group(1)), int(match.group(2))
