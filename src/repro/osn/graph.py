"""Undirected friendship graph.

A thin, fast adjacency structure (dict of sets) with the handful of
queries the simulator and the attack need: neighbourhoods, mutual
friends, and degree statistics.  We deliberately avoid networkx here —
the hot loops (reverse lookup over tens of thousands of candidates) want
plain set operations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple


class FriendGraph:
    """An undirected graph over integer user ids."""

    def __init__(self) -> None:
        self._adj: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, user_id: int) -> None:
        self._adj.setdefault(user_id, set())

    def add_edge(self, a: int, b: int) -> bool:
        """Add a friendship; returns ``False`` if it already existed.

        Self-friendships are rejected: no OSN allows them and they would
        corrupt mutual-friend counts.
        """
        if a == b:
            raise ValueError(f"self-friendship not allowed: {a}")
        neighbours_a = self._adj.setdefault(a, set())
        if b in neighbours_a:
            return False
        neighbours_a.add(b)
        self._adj.setdefault(b, set()).add(a)
        return True

    def remove_edge(self, a: int, b: int) -> bool:
        """Remove a friendship; returns ``False`` if it did not exist."""
        if a not in self._adj or b not in self._adj[a]:
            return False
        self._adj[a].discard(b)
        self._adj[b].discard(a)
        return True

    def remove_node(self, user_id: int) -> None:
        """Remove a user and all incident friendships."""
        for other in self._adj.pop(user_id, set()):
            self._adj[other].discard(user_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, user_id: int) -> bool:
        return user_id in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def nodes(self) -> Iterator[int]:
        return iter(self._adj)

    def neighbors(self, user_id: int) -> Set[int]:
        """The friend set of ``user_id`` (a *copy-free view*; do not mutate)."""
        return self._adj.get(user_id, frozenset())  # type: ignore[return-value]

    def degree(self, user_id: int) -> int:
        return len(self._adj.get(user_id, ()))

    def are_friends(self, a: int, b: int) -> bool:
        return b in self._adj.get(a, ())

    def mutual_friends(self, a: int, b: int) -> Set[int]:
        return set(self._adj.get(a, set())) & self._adj.get(b, set())

    def mutual_friend_count(self, a: int, b: int) -> int:
        fa = self._adj.get(a, set())
        fb = self._adj.get(b, set())
        if len(fb) < len(fa):
            fa, fb = fb, fa
        return sum(1 for f in fa if f in fb)

    def has_mutual_friend(self, a: int, b: int) -> bool:
        fa = self._adj.get(a, set())
        fb = self._adj.get(b, set())
        if len(fb) < len(fa):
            fa, fb = fb, fa
        return any(f in fb for f in fa)

    def edge_count(self) -> int:
        return sum(len(n) for n in self._adj.values()) // 2

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Each undirected edge exactly once, as (low id, high id)."""
        for a, neighbours in self._adj.items():
            for b in neighbours:
                if a < b:
                    yield (a, b)

    def degree_histogram(self) -> Dict[int, int]:
        """Mapping degree -> number of nodes with that degree."""
        hist: Dict[int, int] = {}
        for neighbours in self._adj.values():
            d = len(neighbours)
            hist[d] = hist.get(d, 0) + 1
        return hist

    def mean_degree(self) -> float:
        if not self._adj:
            return 0.0
        return 2.0 * self.edge_count() / len(self._adj)

    def subgraph_degree(self, user_id: int, within: Set[int]) -> int:
        """How many of ``user_id``'s friends fall inside ``within``."""
        return sum(1 for f in self._adj.get(user_id, ()) if f in within)

    def bulk_add_edges(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Add many edges; returns how many were new."""
        added = 0
        for a, b in edges:
            if self.add_edge(a, b):
                added += 1
        return added

    def neighbors_list(self, user_id: int) -> List[int]:
        """Friends in a deterministic (sorted) order, for stable pagination."""
        return sorted(self._adj.get(user_id, ()))
