"""Messaging and friend requests: the OSN's contact surfaces.

Section 2 of the paper assumes the third party "has a means to send
messages directly to many of the students, and can send friend requests
to all of the students".  This module supplies both surfaces with the
policy enforced:

* a message can be sent only when the sender sees the recipient's
  "Message" button (never the case for a stranger messaging a
  registered minor on Facebook);
* a friend request can be sent to anyone, and sits pending until the
  recipient responds (acceptance behaviour is modelled by the caller —
  the attack in this reproduction stays passive and merely *counts*
  reachability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .errors import ForbiddenError, NotFoundError


@dataclass(frozen=True)
class Message:
    """One delivered direct message."""

    sender_id: int
    recipient_id: int
    text: str
    sent_at_year: float


@dataclass(frozen=True)
class FriendRequest:
    """A pending (or answered) friend request."""

    sender_id: int
    recipient_id: int
    sent_at_year: float


class ContactService:
    """Inboxes and friend-request queues, policy-checked by the network.

    The :class:`~repro.osn.network.SocialNetwork` owns an instance and
    performs the policy check before calling :meth:`deliver_message`;
    this class only stores state and enforces structural rules
    (no self-messaging, no duplicate pending requests).
    """

    def __init__(self) -> None:
        self._inboxes: Dict[int, List[Message]] = {}
        self._pending: Dict[int, List[FriendRequest]] = {}
        self._sent_requests: Set[Tuple[int, int]] = set()
        self.messages_delivered = 0
        self.requests_sent = 0

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def deliver_message(self, message: Message) -> None:
        if message.sender_id == message.recipient_id:
            raise ForbiddenError("cannot message yourself")
        self._inboxes.setdefault(message.recipient_id, []).append(message)
        self.messages_delivered += 1

    def inbox(self, user_id: int) -> List[Message]:
        return list(self._inboxes.get(user_id, []))

    def inbox_size(self, user_id: int) -> int:
        return len(self._inboxes.get(user_id, []))

    # ------------------------------------------------------------------
    # Friend requests
    # ------------------------------------------------------------------
    def add_request(self, request: FriendRequest) -> bool:
        """Queue a request; returns False if one is already pending."""
        if request.sender_id == request.recipient_id:
            raise ForbiddenError("cannot friend-request yourself")
        key = (request.sender_id, request.recipient_id)
        if key in self._sent_requests:
            return False
        self._sent_requests.add(key)
        self._pending.setdefault(request.recipient_id, []).append(request)
        self.requests_sent += 1
        return True

    def pending_requests(self, user_id: int) -> List[FriendRequest]:
        return list(self._pending.get(user_id, []))

    def pop_request(self, recipient_id: int, sender_id: int) -> Optional[FriendRequest]:
        """Remove and return a specific pending request (answering it)."""
        queue = self._pending.get(recipient_id, [])
        for i, request in enumerate(queue):
            if request.sender_id == sender_id:
                return queue.pop(i)
        return None

    def has_pending(self, recipient_id: int, sender_id: int) -> bool:
        return any(
            r.sender_id == sender_id for r in self._pending.get(recipient_id, [])
        )
