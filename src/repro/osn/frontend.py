"""The OSN's HTML-over-HTTP face.

:class:`HtmlFrontend` is the *only* interface the crawler layer may
touch.  Each ``get()`` is one simulated HTTP GET: it authenticates the
session account, charges the rate limiter, routes the path, renders the
policy-filtered result to HTML and returns the string — mirroring how
the paper's crawler "visits public Web pages in Facebook and downloads
the HTML source code of each Web page" (Section 3.2).  Actions that
change world state (messages, friend requests) go through ``post()``:
the GET surface is read-only end to end, which is the invariant the
PURE001 lint rule proves over the whole call graph so concurrent
sessions can serve off one shared world.

GET routes
----------
``/find-friends/browser?school=<id>&offset=<n>``
    The Find Friends Portal, paginated (AJAX-style offsets).
``/graphsearch?school=<id>[&year_op=..&year=..][&city=..][&current=1]``
    Graph Search with structured filters.
``/profile/<uid>``
    A public profile, rendered for the session's viewer.
``/profile/<uid>/friends?offset=<n>``
    One page (20 rows) of a friend list.
``/school/<id>``
    School directory entry (name, city, enrollment hint).

POST routes
-----------
``/messages/send?to=<uid>&text=...``
    Send a direct message (policy permitting) - a confirmation page or
    a 403 mirrors whether the Message button was available.
``/friend-request?to=<uid>``
    Send a friend request (allowed toward anyone).
"""

from __future__ import annotations

import re
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, Mapping, Optional

from . import pages
from .errors import (
    AccountDisabledError,
    AuthenticationError,
    BadRequestError,
    ForbiddenError,
    NotFoundError,
    OsnError,
    RateLimitedError,
)
from .network import GraphSearchQuery, SocialNetwork
from .ratelimit import RateLimitConfig, RateLimiter
from .rendercache import CacheKey, RenderCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.telemetry.runtime import Telemetry

    from .clock import SimClock

_PROFILE_RE = re.compile(r"^/profile/(\d+)$")
_FRIENDS_RE = re.compile(r"^/profile/(\d+)/friends$")
_SCHOOL_RE = re.compile(r"^/school/(\d+)$")


#: Exception type -> status-outcome label used on request telemetry.
_OUTCOMES: Dict[type, str] = {
    RateLimitedError: "rate_limited",
    AccountDisabledError: "account_disabled",
    AuthenticationError: "auth_failed",
    NotFoundError: "not_found",
    ForbiddenError: "forbidden",
    BadRequestError: "bad_request",
}


class HtmlFrontend:
    """Serve the social network as HTML pages, one request at a time."""

    def __init__(
        self,
        network: SocialNetwork,
        rate_limit: Optional[RateLimitConfig] = None,
        telemetry: Optional["Telemetry"] = None,
        cache: Optional[RenderCache] = None,
    ) -> None:
        self.network = network
        self.limiter = RateLimiter(network.clock, rate_limit, telemetry=telemetry)
        self.telemetry = telemetry
        self.cache = cache
        if telemetry is not None:
            self._init_metrics(telemetry)

    @property
    def clock(self) -> "SimClock":
        """The simulated clock, exposed for crawler pacing.

        This is the one simulator internal crawlers may read directly:
        a real attacker always knows what time it is.  Everything else
        behind this frontend stays reachable only as rendered HTML.
        """
        return self.network.clock

    @property
    def request_count(self) -> int:
        """Requests served past authentication and the rate limiter.

        Derived from the per-account limiter counters rather than a
        frontend-level mutable — the serve path itself holds no state.
        """
        return self.limiter.total_served

    def set_cache(self, cache: Optional[RenderCache]) -> None:
        """Attach (or detach) the page-render cache.

        Opt-in: worlds are built uncached so tests and experiments that
        mutate accounts in place observe every change; crawl-heavy
        paths attach a cache and accept the version-counter contract
        (out-of-band mutators must call ``network.bump_version()``).
        """
        self.cache = cache

    def set_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        """Attach (or detach) observability; also covers the rate limiter."""
        self.telemetry = telemetry
        self.limiter.set_telemetry(telemetry)
        if telemetry is not None:
            self._init_metrics(telemetry)

    def _init_metrics(self, telemetry: "Telemetry") -> None:
        self._requests_metric = telemetry.registry.counter(
            "frontend_requests_total",
            "HTTP requests served by the OSN frontend, by outcome",
            labelnames=("outcome",),
        )
        self._wall_metric = telemetry.registry.histogram(
            "frontend_request_wall_seconds",
            "Wall-clock time spent serving one request",
        )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def get(
        self,
        account_id: int,
        path: str,
        params: Optional[Mapping[str, str]] = None,
    ) -> str:
        """Perform one authenticated GET and return the page HTML.

        Strictly read-only: no world mutation is reachable from here
        (machine-checked by PURE001).
        """
        with self._measured(account_id, path):
            return self._serve_read(account_id, path, params)

    def post(
        self,
        account_id: int,
        path: str,
        params: Optional[Mapping[str, str]] = None,
    ) -> str:
        """Perform one authenticated state-changing POST."""
        with self._measured(account_id, path):
            return self._serve_write(account_id, path, params)

    @contextmanager
    def _measured(self, account_id: int, path: str) -> Iterator[None]:
        """Request-telemetry envelope shared by the GET and POST paths."""
        telemetry = self.telemetry
        if telemetry is None:
            yield
            return
        wall_start = time.perf_counter()
        outcome = "ok"
        try:
            yield
        except OsnError as exc:
            outcome = _OUTCOMES.get(type(exc), "error")
            raise
        finally:
            wall = time.perf_counter() - wall_start
            self._requests_metric.labels(outcome=outcome).inc()
            self._wall_metric.labels().observe(wall)
            telemetry.emit(
                "http",
                account=account_id,
                path=path,
                outcome=outcome,
                wall_seconds=wall,
            )

    def _serve_read(
        self,
        account_id: int,
        path: str,
        params: Optional[Mapping[str, str]] = None,
    ) -> str:
        """Authenticate, charge the limiter, route a read (telemetry-free)."""
        self._admit(account_id)
        params = dict(params or {})
        cache = self.cache
        if cache is not None:
            key = self._cache_key(account_id, path, params)
            if key is not None:
                page = cache.get(key)
                if page is None:
                    page = self._route_read(account_id, path, params)
                    cache.put(key, page)
                return page
        return self._route_read(account_id, path, params)

    def _route_read(
        self, account_id: int, path: str, params: Dict[str, str]
    ) -> str:
        """Dispatch an admitted read to its handler (cache-oblivious)."""
        if path == "/find-friends/browser":
            return self._find_friends(account_id, params)
        if path == "/graphsearch":
            return self._graph_search(account_id, params)
        match = _FRIENDS_RE.match(path)
        if match:
            return self._friends(account_id, int(match.group(1)), params)
        match = _PROFILE_RE.match(path)
        if match:
            return self._profile(account_id, int(match.group(1)))
        match = _SCHOOL_RE.match(path)
        if match:
            return self._school(int(match.group(1)))
        raise NotFoundError(f"no GET route for {path!r}")

    def _cache_key(
        self, account_id: int, path: str, params: Dict[str, str]
    ) -> Optional[CacheKey]:
        """The cache key for a GET, or ``None`` when it must not be cached.

        Every key ends with the network's ``version`` counter, so any
        page-visible mutation retires all earlier entries at once.
        Viewer identity collapses to the viewer *visibility class*
        (:class:`~repro.osn.privacy.Relationship`) on the routes whose
        render depends on the viewer only through it; school-search
        pages are per-account (the portal samples a per-account pool),
        and friend lists under the reverse-lookup countermeasure are
        never cached because member visibility is decided per
        (member, viewer) pair, which no class-level key captures.
        POSTs never reach this function: writes always execute.
        """
        network = self.network
        version = network.version
        if path == "/find-friends/browser":
            school_id = self._int_param(params, "school")
            offset = self._int_param(params, "offset", 0)
            return ("search", account_id, school_id, offset, version)
        if path == "/graphsearch":
            return (
                "graphsearch",
                self._int_param(params, "school"),
                params.get("year_op"),
                params.get("year"),
                params.get("city"),
                params.get("current") == "1",
                version,
            )
        match = _FRIENDS_RE.match(path)
        if match:
            if not network.reverse_lookup_enabled:
                return None
            target_id = int(match.group(1))
            rel = network.relationship(account_id, target_id)
            offset = self._int_param(params, "offset", 0)
            return ("friends", target_id, rel, offset, version)
        match = _PROFILE_RE.match(path)
        if match:
            target_id = int(match.group(1))
            rel = network.relationship(account_id, target_id)
            return ("profile", target_id, rel, version)
        match = _SCHOOL_RE.match(path)
        if match:
            return ("school", int(match.group(1)), version)
        return None

    def _serve_write(
        self,
        account_id: int,
        path: str,
        params: Optional[Mapping[str, str]] = None,
    ) -> str:
        """Authenticate, charge the limiter, route an action (POST)."""
        self._admit(account_id)
        params = dict(params or {})

        if path == "/messages/send":
            return self._send_message(account_id, params)
        if path == "/friend-request":
            return self._friend_request(account_id, params)
        raise NotFoundError(f"no POST route for {path!r}")

    def _admit(self, account_id: int) -> None:
        """Session auth + rate-limit charge, shared by both verbs."""
        self._authenticate(account_id)
        self.limiter.check(account_id)

    def _authenticate(self, account_id: int) -> None:
        account = self.network.users.get(account_id)
        if account is None:
            raise AuthenticationError(f"unknown session account {account_id}")
        if account.disabled:
            raise AuthenticationError(f"session account {account_id} is disabled")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    @staticmethod
    def _int_param(params: Mapping[str, str], key: str, default: Optional[int] = None) -> int:
        raw = params.get(key)
        if raw is None:
            if default is None:
                raise BadRequestError(f"missing required parameter {key!r}")
            return default
        try:
            return int(raw)
        except ValueError:
            raise BadRequestError(f"parameter {key!r} is not an integer: {raw!r}") from None

    def _find_friends(self, account_id: int, params: Mapping[str, str]) -> str:
        school_id = self._int_param(params, "school")
        offset = self._int_param(params, "offset", 0)
        total, entries = self.network.school_search(account_id, school_id, offset)
        return pages.render_search_page(total, offset, entries)

    def _graph_search(self, account_id: int, params: Mapping[str, str]) -> str:
        school_id = self._int_param(params, "school")
        year_op = params.get("year_op")
        year = self._int_param(params, "year", -1) if "year" in params else None
        query = GraphSearchQuery(
            school_id=school_id,
            year_op=year_op,
            year=year,
            current_city=params.get("city"),
            current_students_only=params.get("current") == "1",
        )
        entries = self.network.graph_search(account_id, query)
        return pages.render_search_page(len(entries), 0, entries)

    def _profile(self, account_id: int, target_id: int) -> str:
        view = self.network.view_profile(account_id, target_id)
        return pages.render_profile_page(view)

    def _friends(self, account_id: int, target_id: int, params: Mapping[str, str]) -> str:
        offset = self._int_param(params, "offset", 0)
        total, entries = self.network.friend_page(account_id, target_id, offset)
        return pages.render_friends_page(target_id, total, offset, entries)

    def _school(self, school_id: int) -> str:
        school = self.network.get_school(school_id)
        return pages.render_school_page(school)

    def _send_message(self, account_id: int, params: Mapping[str, str]) -> str:
        recipient = self._int_param(params, "to")
        text = params.get("text", "")
        self.network.send_message(account_id, recipient, text)
        return pages.render_action_page("message-sent", recipient)

    def _friend_request(self, account_id: int, params: Mapping[str, str]) -> str:
        recipient = self._int_param(params, "to")
        accepted = self.network.send_friend_request(account_id, recipient)
        kind = "friend-request-sent" if accepted else "friend-request-duplicate"
        return pages.render_action_page(kind, recipient)
