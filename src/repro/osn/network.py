"""The simulated Online Social Network.

:class:`SocialNetwork` owns the account registry, the friendship graph,
the school directory and the policy engine, and answers the only
questions the outside world may ask:

* ``view_profile(viewer, target)`` — the policy-filtered profile view;
* ``friend_page(viewer, target, offset)`` — one page (20 entries, the
  paper's ``p = 20``) of a friend list, *if* it is visible, with the
  Section-8 reverse-lookup countermeasure applied when enabled;
* ``school_search(...)`` — the Find Friends Portal: registered adults
  associated with a school, truncated per account, never minors;
* ``graph_search(...)`` — structured queries ("current students at HS1
  who live in city C"), with the same minor exclusion.

Everything the crawler does goes through the HTML frontend
(``repro.osn.frontend``) which in turn calls these methods, so the
attack code can never accidentally peek at ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .clock import SimClock
from .errors import ForbiddenError, NotFoundError, RegistrationError
from .graph import FriendGraph
from .messaging import ContactService, FriendRequest, Message
from .policy import SitePolicy, facebook_policy
from .privacy import Audience, PrivacySettings, ProfileField, Relationship
from .profile import Birthday, Profile
from .user import Account
from .view import ProfileView, WallPostView


@dataclass(frozen=True)
class School:
    """An entry in the OSN's school directory.

    ``enrollment_hint`` models the approximate school size an attacker
    can look up on Wikipedia (the paper's step 6 uses it to pick the
    threshold ``t``).
    """

    school_id: int
    name: str
    city: str
    enrollment_hint: Optional[int] = None


@dataclass(frozen=True)
class DirectoryEntry:
    """A search result or friend-list row: id plus display name."""

    user_id: int
    name: str


@dataclass(frozen=True)
class GraphSearchQuery:
    """A structured Graph-Search-style query.

    ``year_op`` is one of ``"in"``, ``"after"``, ``"before"`` or ``None``
    (no year constraint); ``current_city`` optionally restricts to users
    whose profile lists that city.  ``current_students_only`` mirrors
    "current students at HS1" queries.
    """

    school_id: int
    year_op: Optional[str] = None
    year: Optional[int] = None
    current_city: Optional[str] = None
    current_students_only: bool = False


def render_profile_view(
    policy: SitePolicy, account: Account, rel: Relationship, now: float
) -> ProfileView:
    """Build the policy-filtered view of ``account`` for one viewer class.

    Pure function of (policy, account, relationship, instant) — shared
    by the object-world :class:`SocialNetwork` and the columnar serve
    path (:mod:`repro.colgen.serve`), which is what makes the two
    backends byte-identical: both render through this exact field
    logic, then through the same HTML templates.
    """

    def sees(field_: ProfileField) -> bool:
        return policy.field_visible_to(account, field_, rel, now)

    profile = account.profile
    contact = profile.contact_info
    contact_visible = sees(ProfileField.CONTACT_INFO) and contact is not None
    return ProfileView(
        user_id=account.user_id,
        name=profile.name.full,
        gender=profile.gender if sees(ProfileField.GENDER) else None,
        networks=profile.networks if sees(ProfileField.NETWORKS) else (),
        has_profile_photo=profile.has_profile_photo and sees(ProfileField.PROFILE_PHOTO),
        high_schools=profile.high_schools if sees(ProfileField.HIGH_SCHOOL) else (),
        relationship_status=(
            profile.relationship_status if sees(ProfileField.RELATIONSHIP) else None
        ),
        interested_in=profile.interested_in if sees(ProfileField.INTERESTED_IN) else None,
        birthday_year=(
            account.registered_birthday.year
            if sees(ProfileField.BIRTHDAY) and profile.birthday is not None
            else None
        ),
        hometown=profile.hometown if sees(ProfileField.HOMETOWN) else None,
        current_city=profile.current_city if sees(ProfileField.CURRENT_CITY) else None,
        employer=profile.employer if sees(ProfileField.EMPLOYER) else None,
        graduate_school=(
            profile.graduate_school if sees(ProfileField.GRADUATE_SCHOOL) else None
        ),
        photo_count=profile.photo_count if sees(ProfileField.PHOTOS) else None,
        wall_post_count=len(profile.wall_posts) if sees(ProfileField.WALL) else None,
        wall_posts=(
            tuple(
                WallPostView(post.author_id, post.text)
                for post in profile.wall_posts
            )
            if sees(ProfileField.WALL)
            else ()
        ),
        contact_email=contact.email if contact_visible else None,
        contact_phone=contact.phone if contact_visible else None,
        friend_list_visible=policy.field_visible_to(
            account, ProfileField.FRIEND_LIST, rel, now
        ),
        message_button=policy.message_button_visible(account, rel, now),
        public_search_listed=policy.public_search_eligible(account, now),
    )


class SocialNetwork:
    """A complete in-memory OSN with Facebook-like semantics."""

    def __init__(
        self,
        policy: Optional[SitePolicy] = None,
        clock: Optional[SimClock] = None,
        *,
        reverse_lookup_enabled: bool = True,
        search_result_cap: int = 256,
        search_page_size: int = 20,
        friends_page_size: int = 20,
        search_salt: int = 0,
    ) -> None:
        self.policy = policy or facebook_policy()
        self.policy.validate()
        self.clock = clock or SimClock()
        self.reverse_lookup_enabled = reverse_lookup_enabled
        self.search_result_cap = search_result_cap
        self.search_page_size = search_page_size
        self.friends_page_size = friends_page_size
        self.search_salt = search_salt

        self.users: Dict[int, Account] = {}
        self.graph = FriendGraph()
        self.contact = ContactService()
        self.schools: Dict[int, School] = {}
        self._next_user_id = 1
        self._next_school_id = 1
        self._school_members: Dict[int, List[int]] = {}
        self._version = 0

    # ------------------------------------------------------------------
    # World version (render-cache invalidation contract)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone counter bumped on every page-visible world mutation.

        The frontend's render cache keys every entry on this value, so a
        bump invalidates all cached pages at once.  Mutating verbs bump
        it automatically; code that mutates accounts *directly* (tests,
        countermeasure sweeps flipping privacy settings in place) must
        call :meth:`bump_version` itself — that is the whole contract.
        """
        return self._version

    def bump_version(self) -> None:
        """Invalidate cached page renders after an out-of-band mutation."""
        self._version += 1

    # ------------------------------------------------------------------
    # Directory management
    # ------------------------------------------------------------------
    def register_school(
        self, name: str, city: str, enrollment_hint: Optional[int] = None
    ) -> School:
        school = School(self._next_school_id, name, city, enrollment_hint)
        self._next_school_id += 1
        self.schools[school.school_id] = school
        self.bump_version()
        return school

    def get_school(self, school_id: int) -> School:
        try:
            return self.schools[school_id]
        except KeyError:
            raise NotFoundError(f"no such school: {school_id}") from None

    def find_school_by_name(self, name: str) -> Optional[School]:
        lowered = name.lower()
        for school in self.schools.values():
            if school.name.lower() == lowered:
                return school
        return None

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------
    def register_account(
        self,
        profile: Profile,
        registered_birthday: Birthday,
        real_birthday: Optional[Birthday] = None,
        settings: Optional[PrivacySettings] = None,
        *,
        person_id: Optional[int] = None,
        created_at_year: Optional[float] = None,
        is_fake: bool = False,
        enforce_minimum_age: bool = True,
    ) -> Account:
        """Create an account, enforcing the registration age ban.

        ``real_birthday`` defaults to the registered one (truthful user).
        The age check applies to the *registered* birthday at the account
        creation instant — lying about the birth year is exactly how
        under-13 children bypass it (paper, Section 1).
        """
        created = created_at_year if created_at_year is not None else self.clock.now_year
        registered_age = created - registered_birthday.as_year_fraction
        if enforce_minimum_age and not self.policy.registration_allowed(registered_age):
            raise RegistrationError(
                f"registered age {registered_age:.1f} below minimum "
                f"{self.policy.minimum_registration_age}"
            )
        account = Account(
            user_id=self._next_user_id,
            profile=profile,
            registered_birthday=registered_birthday,
            real_birthday=real_birthday or registered_birthday,
            settings=settings if settings is not None else self._default_settings(registered_birthday),
            person_id=person_id,
            created_at_year=created,
            is_fake=is_fake,
        )
        self._next_user_id += 1
        self.users[account.user_id] = account
        self.graph.add_node(account.user_id)
        self._index_member(account)
        self.bump_version()
        return account

    def _index_member(self, account: Account) -> None:
        """Eagerly index the account's school affiliations.

        User ids are handed out in increasing order, so appending keeps
        each member list sorted — same order the old full rebuild
        produced with ``sorted(self.users)``.
        """
        for affiliation in account.profile.high_schools:
            self._school_members.setdefault(affiliation.school_id, []).append(
                account.user_id
            )

    def _default_settings(self, registered_birthday: Birthday) -> PrivacySettings:
        age_now = registered_birthday.age_at(self.clock.now_year)
        if age_now < self.policy.adult_age:
            return self.policy.default_minor_settings
        return self.policy.default_adult_settings

    def get_account(self, user_id: int) -> Account:
        try:
            return self.users[user_id]
        except KeyError:
            raise NotFoundError(f"no such user: {user_id}") from None

    def add_friendship(self, a: int, b: int) -> bool:
        """Create a (mutual) friendship between two existing accounts."""
        acct_a, acct_b = self.get_account(a), self.get_account(b)
        if self.graph.add_edge(a, b):
            acct_a.friend_ids.add(b)
            acct_b.friend_ids.add(a)
            self.bump_version()
            return True
        return False

    def friend_count(self, user_id: int) -> int:
        return self.graph.degree(user_id)

    @property
    def current_year(self) -> int:
        return self.clock.current_year

    def is_registered_minor(self, user_id: int) -> bool:
        return self.policy.is_registered_minor(self.get_account(user_id), self.clock.now_year)

    # ------------------------------------------------------------------
    # Viewer relationship
    # ------------------------------------------------------------------
    def relationship(self, viewer_id: Optional[int], target_id: int) -> Relationship:
        """The viewer's relationship to the target (paper, Section 3).

        ``viewer_id=None`` models a logged-out visitor: a stranger.
        """
        target = self.get_account(target_id)
        if viewer_id is None:
            return Relationship.STRANGER
        if viewer_id == target_id:
            return Relationship.SELF
        viewer = self.get_account(viewer_id)
        if self.graph.are_friends(viewer_id, target_id):
            return Relationship.FRIEND
        if self.graph.has_mutual_friend(viewer_id, target_id):
            return Relationship.FRIEND_OF_FRIEND
        if set(viewer.profile.networks) & set(target.profile.networks):
            return Relationship.NETWORK_MEMBER
        return Relationship.STRANGER

    # ------------------------------------------------------------------
    # Profile views
    # ------------------------------------------------------------------
    def view_profile(self, viewer_id: Optional[int], target_id: int) -> ProfileView:
        """Render ``target_id``'s profile as ``viewer_id`` sees it."""
        account = self.get_account(target_id)
        if account.disabled:
            raise NotFoundError(f"account {target_id} is deactivated")
        rel = self.relationship(viewer_id, target_id)
        return render_profile_view(self.policy, account, rel, self.clock.now_year)

    def _friend_list_visible(self, account: Account, rel: Relationship) -> bool:
        return self.policy.field_visible_to(
            account, ProfileField.FRIEND_LIST, rel, self.clock.now_year
        )

    # ------------------------------------------------------------------
    # Friend lists (paginated; reverse-lookup countermeasure lives here)
    # ------------------------------------------------------------------
    def friend_page(
        self, viewer_id: Optional[int], target_id: int, offset: int = 0
    ) -> Tuple[int, List[DirectoryEntry]]:
        """One page of ``target_id``'s friend list as seen by the viewer.

        Returns ``(total_visible, entries)``.  Raises
        :class:`ForbiddenError` when the list is not visible at all.

        When ``reverse_lookup_enabled`` is ``False`` (the Section-8
        countermeasure), a member is omitted from *other people's* friend
        lists whenever their own friend list is hidden from this viewer —
        so users who hide their list (and all registered minors) can no
        longer be discovered through their friends' lists.
        """
        account = self.get_account(target_id)
        rel = self.relationship(viewer_id, target_id)
        if not self._friend_list_visible(account, rel):
            raise ForbiddenError(f"friend list of {target_id} not visible")
        friend_ids = self.graph.neighbors_list(target_id)
        if not self.reverse_lookup_enabled:
            friend_ids = [
                fid for fid in friend_ids if self._visible_in_friend_lists(viewer_id, fid)
            ]
        total = len(friend_ids)
        page = friend_ids[offset : offset + self.friends_page_size]
        entries = [
            DirectoryEntry(fid, self.users[fid].profile.name.full) for fid in page
        ]
        return total, entries

    def _visible_in_friend_lists(self, viewer_id: Optional[int], member_id: int) -> bool:
        """Countermeasure predicate: may ``member_id`` appear in friend lists?"""
        member = self.users.get(member_id)
        if member is None or member.disabled:
            return False
        rel = self.relationship(viewer_id, member_id)
        return self._friend_list_visible(member, rel)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _school_member_ids(self, school_id: int) -> List[int]:
        """All user ids whose profile lists ``school_id`` (any audience).

        Pure read: the index is maintained eagerly at registration time
        (``_index_member``), never rebuilt lazily on the serve path —
        PURE001 holds the whole search surface to read-only.
        """
        return self._school_members.get(school_id, [])

    def _search_pool(self, viewer_account_id: int, school_id: int) -> List[int]:
        """The truncated, per-account sample the Find Friends Portal serves.

        Real Facebook returned only a few hundred results per search and
        different (overlapping) result sets to different accounts — the
        paper exploits this by searching from multiple fake accounts.  We
        model it as a deterministic per-account shuffled sample of the
        eligible users, capped at ``search_result_cap``.
        """
        now = self.clock.now_year
        eligible = [
            uid
            for uid in self._school_member_ids(school_id)
            if self.policy.school_search_eligible(self.users[uid], now)
        ]
        if len(eligible) <= self.search_result_cap:
            return eligible
        rng = random.Random((viewer_account_id * 1_000_003 + school_id) ^ self.search_salt)
        return sorted(rng.sample(eligible, self.search_result_cap))

    def school_search(
        self, viewer_account_id: int, school_id: int, offset: int = 0
    ) -> Tuple[int, List[DirectoryEntry]]:
        """One page of Find-Friends-Portal results for a school.

        Registered minors are *never* returned (the precaution the paper
        verified with ground truth).  Returns ``(total, entries)``.
        """
        self.get_school(school_id)
        self.get_account(viewer_account_id)
        pool = self._search_pool(viewer_account_id, school_id)
        page = pool[offset : offset + self.search_page_size]
        entries = [
            DirectoryEntry(uid, self.users[uid].profile.name.full) for uid in page
        ]
        return len(pool), entries

    def graph_search(
        self, viewer_account_id: int, query: GraphSearchQuery
    ) -> List[DirectoryEntry]:
        """Structured search; same eligibility rules as the portal."""
        self.get_account(viewer_account_id)
        if self.search_result_cap <= 0:
            return []
        now = self.clock.now_year
        current_year = self.clock.current_year
        results: List[DirectoryEntry] = []
        for uid in self._school_member_ids(query.school_id):
            account = self.users[uid]
            if not self.policy.school_search_eligible(account, now):
                continue
            affiliation = account.profile.affiliation_for(query.school_id)
            if affiliation is None:
                continue
            if query.current_students_only and not affiliation.is_current_student(
                current_year
            ):
                continue
            if query.year_op is not None:
                if affiliation.graduation_year is None or query.year is None:
                    continue
                grad = affiliation.graduation_year
                matches = {
                    "in": grad == query.year,
                    "after": grad > query.year,
                    "before": grad < query.year,
                }.get(query.year_op)
                if matches is None:
                    raise ValueError(f"bad year_op: {query.year_op!r}")
                if not matches:
                    continue
            if (
                query.current_city is not None
                and account.profile.current_city != query.current_city
            ):
                continue
            results.append(DirectoryEntry(uid, account.profile.name.full))
            if len(results) >= self.search_result_cap:
                break
        return results

    # ------------------------------------------------------------------
    # Contact surfaces (messages and friend requests; Section 2 threats)
    # ------------------------------------------------------------------
    def can_message(self, sender_id: int, recipient_id: int) -> bool:
        """Whether the sender sees the recipient's Message button."""
        recipient = self.get_account(recipient_id)
        rel = self.relationship(sender_id, recipient_id)
        return self.policy.message_button_visible(recipient, rel, self.clock.now_year)

    def send_message(self, sender_id: int, recipient_id: int, text: str) -> Message:
        """Deliver a direct message, or raise :class:`ForbiddenError`.

        The policy decides: strangers can never message registered
        minors on Facebook, but *can* message the many minors whose
        lied-about age makes them registered adults (Table 5's
        'Message link' row).
        """
        self.get_account(sender_id)
        if not self.can_message(sender_id, recipient_id):
            raise ForbiddenError(
                f"user {sender_id} may not message user {recipient_id}"
            )
        message = Message(sender_id, recipient_id, text, self.clock.now_year)
        self.contact.deliver_message(message)
        return message

    def send_friend_request(self, sender_id: int, recipient_id: int) -> bool:
        """Send a friend request (allowed toward anyone, even minors)."""
        self.get_account(sender_id)
        self.get_account(recipient_id)
        if self.graph.are_friends(sender_id, recipient_id):
            return False
        return self.contact.add_request(
            FriendRequest(sender_id, recipient_id, self.clock.now_year)
        )

    def respond_to_friend_request(
        self, recipient_id: int, sender_id: int, accept: bool
    ) -> bool:
        """Answer a pending request; creates the friendship on accept."""
        request = self.contact.pop_request(recipient_id, sender_id)
        if request is None:
            return False
        if accept:
            self.add_friendship(sender_id, recipient_id)
        return accept

    # ------------------------------------------------------------------
    # Statistics (for tests / world validation; not used by the attack)
    # ------------------------------------------------------------------
    def population_stats(self) -> Dict[str, float]:
        now = self.clock.now_year
        total = len(self.users)
        minors = sum(
            1 for a in self.users.values() if self.policy.is_registered_minor(a, now)
        )
        liars = sum(1 for a in self.users.values() if a.lied_about_age())
        return {
            "users": float(total),
            "registered_minors": float(minors),
            "age_liars": float(liars),
            "edges": float(self.graph.edge_count()),
            "mean_degree": self.graph.mean_degree(),
        }
