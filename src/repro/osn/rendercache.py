"""An LRU cache for rendered HTML pages.

The paper's crawl hammers a small set of hot pages — school search
pages scrolled by every account and high-degree profiles re-entered
through many friend lists.  Since a rendered page is a pure function of
``(route, target, viewer visibility class, world version)``, the
frontend can memoise the HTML bytes and serve repeats without touching
the policy engine or the templates.

Keys carry the owning network's ``version`` counter, which every
mutating verb bumps: after any page-visible world mutation, all live
keys change and stale entries simply age out of the LRU.  Correctness
therefore never depends on enumerating what a mutation invalidated.

The cache itself is deliberately dumb: it stores strings under opaque
tuple keys.  What is cacheable (and what the key must include) is the
frontend's knowledge — see ``HtmlFrontend._cache_key``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

#: A cache key: route marker plus route-specific discriminators, always
#: ending with the world version.
CacheKey = Tuple[object, ...]

#: Default entry capacity — roughly one school crawl's working set
#: (seed pages + every seed profile at stranger level) with headroom.
DEFAULT_CAPACITY = 4096


class RenderCache:
    """A bounded LRU of rendered pages, shared by all crawl sessions."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[str]:
        """The cached page for ``key``, refreshing its recency; or None."""
        page = self._entries.get(key)
        if page is None:
            self.misses += 1  # repro-lint: shared(RenderCache) -- monotone counter; sessions may undercount under races, never corrupt
            return None
        self._entries.move_to_end(key)  # repro-lint: shared(RenderCache) -- LRU recency touch; any interleaving yields a valid LRU order
        self.hits += 1  # repro-lint: shared(RenderCache) -- monotone counter; sessions may undercount under races, never corrupt
        return page

    def put(self, key: CacheKey, page: str) -> None:
        """Insert a rendered page, evicting the least-recent past capacity."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)  # repro-lint: shared(RenderCache) -- LRU recency touch; any interleaving yields a valid LRU order
        entries[key] = page  # repro-lint: shared(RenderCache) -- idempotent insert: concurrent writers store byte-identical renders of the same key
        while len(entries) > self.capacity:
            entries.popitem(last=False)  # repro-lint: shared(RenderCache) -- eviction only ever shrinks toward capacity; worst case a page re-renders
            self.evictions += 1  # repro-lint: shared(RenderCache) -- monotone counter; sessions may undercount under races, never corrupt

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters for bench records and the crawl CLI summary."""
        return {
            "entries": float(len(self._entries)),
            "capacity": float(self.capacity),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_rate": self.hit_rate,
        }
