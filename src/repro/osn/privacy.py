"""Privacy primitives: audiences, profile fields and per-user settings.

Facebook (2012) let each user choose, per profile field, who may see it.
We model four audience levels plus the two switches the paper's attack
cares about: whether the profile is *publicly searchable* and whether
strangers see a *Message* button (Table 5 reports both).

The site *policy* (``repro.osn.policy``) then caps what these settings
can expose to strangers: for a registered minor, no setting can make more
than the "minimal information" visible (paper, Section 3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping

__all__ = [
    "Audience",
    "PrivacySettings",
    "ProfileField",
    "Relationship",
    "most_private",
]


class Audience(enum.IntEnum):
    """Who may see a profile field, ordered from most to least private.

    The ordering is meaningful: ``min(setting, cap)`` computes the
    effective audience once the site policy caps a field.
    """

    ONLY_ME = 0
    FRIENDS = 1
    FRIENDS_OF_FRIENDS = 2
    PUBLIC = 3


class Relationship(enum.IntEnum):
    """The viewer's relationship to a profile owner, from the owner's side.

    ``STRANGER`` matches the paper's definition (Section 3): not a friend,
    no mutual friends, and no shared school/work network.  A stranger who
    *does* share a network is a ``NETWORK_MEMBER`` and is slightly more
    privileged on 2012-era Facebook; the attack assumes plain strangers.
    """

    STRANGER = 0
    NETWORK_MEMBER = 1
    FRIEND_OF_FRIEND = 2
    FRIEND = 3
    SELF = 4

    def satisfies(self, audience: Audience) -> bool:
        """Whether this relationship is allowed to see ``audience`` content."""
        if self is Relationship.SELF:
            return True
        if audience is Audience.PUBLIC:
            return True
        if audience is Audience.FRIENDS_OF_FRIENDS:
            return self in (Relationship.FRIEND, Relationship.FRIEND_OF_FRIEND)
        if audience is Audience.FRIENDS:
            return self is Relationship.FRIEND
        return False  # ONLY_ME


class ProfileField(str, enum.Enum):
    """Every profile attribute the attack observes or infers.

    The first four form the paper's "minimal information" set; the rest
    are only ever exposed by registered adults (on Facebook).
    """

    NAME = "name"
    GENDER = "gender"
    NETWORKS = "networks"
    PROFILE_PHOTO = "profile_photo"
    HIGH_SCHOOL = "high_school"           # affiliation incl. grad year
    RELATIONSHIP = "relationship"
    INTERESTED_IN = "interested_in"
    BIRTHDAY = "birthday"
    HOMETOWN = "hometown"
    CURRENT_CITY = "current_city"
    FRIEND_LIST = "friend_list"
    PHOTOS = "photos"
    WALL = "wall"
    CONTACT_INFO = "contact_info"
    EMPLOYER = "employer"
    GRADUATE_SCHOOL = "graduate_school"
    # Google+-specific field (Table 6); absent from Facebook profiles.
    CIRCLES = "circles"


#: The fields a stranger may see on ANY profile ("minimal information",
#: paper Section 3.1): name, profile photo, networks joined, and gender.
MINIMAL_FIELDS = frozenset(
    {
        ProfileField.NAME,
        ProfileField.GENDER,
        ProfileField.NETWORKS,
        ProfileField.PROFILE_PHOTO,
    }
)

#: Fields beyond the minimal set, in a stable display order.
EXTENDED_FIELDS = tuple(f for f in ProfileField if f not in MINIMAL_FIELDS)


@dataclass(frozen=True)
class PrivacySettings:
    """A user's chosen (not necessarily effective) privacy configuration.

    ``audiences`` maps each :class:`ProfileField` to the audience the user
    picked; fields absent from the mapping fall back to ``default``.
    ``public_search`` controls whether the profile may appear in public
    search engines and the OSN's own people search; ``message_audience``
    controls who sees the "Message" button.
    """

    audiences: Mapping[ProfileField, Audience] = field(default_factory=dict)
    default: Audience = Audience.FRIENDS
    public_search: bool = True
    message_audience: Audience = Audience.PUBLIC

    def audience_for(self, field_: ProfileField) -> Audience:
        """The audience the user chose for ``field_``."""
        return self.audiences.get(field_, self.default)

    def with_field(self, field_: ProfileField, audience: Audience) -> "PrivacySettings":
        """A copy with one field's audience replaced."""
        updated: Dict[ProfileField, Audience] = dict(self.audiences)
        updated[field_] = audience
        return replace(self, audiences=updated)

    def with_fields(
        self, assignments: Mapping[ProfileField, Audience]
    ) -> "PrivacySettings":
        """A copy with several fields' audiences replaced."""
        updated: Dict[ProfileField, Audience] = dict(self.audiences)
        updated.update(assignments)
        return replace(self, audiences=updated)

    @classmethod
    def everything_public(cls) -> "PrivacySettings":
        """The worst-case (maximum sharing) configuration from Table 1."""
        return cls(
            audiences={f: Audience.PUBLIC for f in ProfileField},
            default=Audience.PUBLIC,
            public_search=True,
            message_audience=Audience.PUBLIC,
        )

    @classmethod
    def everything_private(cls) -> "PrivacySettings":
        """A fully locked-down configuration (ONLY_ME everywhere)."""
        return cls(
            audiences={f: Audience.ONLY_ME for f in ProfileField},
            default=Audience.ONLY_ME,
            public_search=False,
            message_audience=Audience.ONLY_ME,
        )

    @classmethod
    def facebook_adult_default_2012(cls) -> "PrivacySettings":
        """The default configuration for registered adults (Table 1).

        In 2012 the default adult profile exposed name/photo/gender/
        networks, school affiliations, relationship status, "interested
        in", hometown, current city, the friend list and (tagged) photos
        to everyone; birthday and contact information defaulted to
        friends-only.
        """
        public = {
            ProfileField.NAME: Audience.PUBLIC,
            ProfileField.GENDER: Audience.PUBLIC,
            ProfileField.NETWORKS: Audience.PUBLIC,
            ProfileField.PROFILE_PHOTO: Audience.PUBLIC,
            ProfileField.HIGH_SCHOOL: Audience.PUBLIC,
            ProfileField.RELATIONSHIP: Audience.PUBLIC,
            ProfileField.INTERESTED_IN: Audience.PUBLIC,
            ProfileField.HOMETOWN: Audience.PUBLIC,
            ProfileField.CURRENT_CITY: Audience.PUBLIC,
            ProfileField.FRIEND_LIST: Audience.PUBLIC,
            ProfileField.PHOTOS: Audience.PUBLIC,
            ProfileField.EMPLOYER: Audience.PUBLIC,
            ProfileField.GRADUATE_SCHOOL: Audience.PUBLIC,
            ProfileField.BIRTHDAY: Audience.FRIENDS,
            ProfileField.CONTACT_INFO: Audience.FRIENDS,
            ProfileField.WALL: Audience.FRIENDS,
        }
        return cls(
            audiences=public,
            default=Audience.FRIENDS,
            public_search=True,
            message_audience=Audience.PUBLIC,
        )

    @classmethod
    def facebook_minor_default_2012(cls) -> "PrivacySettings":
        """The default configuration for registered minors (Table 1).

        Registered minors default to friends-of-friends for most content;
        the site policy additionally caps what strangers can ever see.
        """
        audiences = {f: Audience.FRIENDS_OF_FRIENDS for f in ProfileField}
        audiences.update(
            {
                ProfileField.NAME: Audience.PUBLIC,
                ProfileField.GENDER: Audience.PUBLIC,
                ProfileField.NETWORKS: Audience.PUBLIC,
                ProfileField.PROFILE_PHOTO: Audience.PUBLIC,
                ProfileField.BIRTHDAY: Audience.FRIENDS,
                ProfileField.CONTACT_INFO: Audience.FRIENDS,
            }
        )
        return cls(
            audiences=audiences,
            default=Audience.FRIENDS_OF_FRIENDS,
            public_search=False,
            message_audience=Audience.FRIENDS_OF_FRIENDS,
        )


def most_private(settings: Iterable[Audience]) -> Audience:
    """The strictest audience among ``settings`` (helper for caps)."""
    return min(settings, default=Audience.PUBLIC)
