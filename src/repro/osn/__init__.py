"""Simulated Online Social Network substrate.

This package is the stand-in for 2012/2013 Facebook (and Google+): a
complete in-memory OSN with accounts, real-vs-registered birth dates,
per-field privacy settings, the documented minor-protection policies,
a friendship graph, people search that excludes registered minors, an
HTML frontend and an anti-crawling rate limiter.

Public API highlights
---------------------
* :class:`~repro.osn.network.SocialNetwork` — the network itself.
* :func:`~repro.osn.policy.facebook_policy` /
  :func:`~repro.osn.policy.googleplus_policy` — the Table-1/Table-6
  policy engines.
* :class:`~repro.osn.frontend.HtmlFrontend` — the crawlable HTML face.
"""

from .clock import SimClock
from .errors import (
    AccountDisabledError,
    AuthenticationError,
    BadRequestError,
    ForbiddenError,
    NotFoundError,
    OsnError,
    ParseError,
    PolicyError,
    RateLimitedError,
    RegistrationError,
)
from .frontend import HtmlFrontend
from .graph import FriendGraph
from .network import DirectoryEntry, GraphSearchQuery, School, SocialNetwork
from .policy import SitePolicy, facebook_policy, googleplus_policy, policy_by_name
from .privacy import (
    EXTENDED_FIELDS,
    MINIMAL_FIELDS,
    Audience,
    PrivacySettings,
    ProfileField,
    Relationship,
)
from .profile import (
    Birthday,
    ContactInfo,
    Gender,
    Name,
    Profile,
    SchoolAffiliation,
    WallPost,
)
from .ratelimit import RateLimitConfig, RateLimiter
from .user import Account
from .messaging import ContactService, FriendRequest, Message
from .view import ProfileView, WallPostView

__all__ = [
    "Account",
    "AccountDisabledError",
    "Audience",
    "AuthenticationError",
    "BadRequestError",
    "Birthday",
    "ContactService",
    "ContactInfo",
    "DirectoryEntry",
    "EXTENDED_FIELDS",
    "ForbiddenError",
    "FriendGraph",
    "FriendRequest",
    "Gender",
    "GraphSearchQuery",
    "HtmlFrontend",
    "MINIMAL_FIELDS",
    "Message",
    "Name",
    "NotFoundError",
    "OsnError",
    "ParseError",
    "PolicyError",
    "PrivacySettings",
    "Profile",
    "ProfileField",
    "ProfileView",
    "RateLimitConfig",
    "RateLimitedError",
    "RateLimiter",
    "RegistrationError",
    "Relationship",
    "School",
    "SchoolAffiliation",
    "SimClock",
    "SitePolicy",
    "SocialNetwork",
    "WallPost",
    "WallPostView",
    "facebook_policy",
    "googleplus_policy",
    "policy_by_name",
]
