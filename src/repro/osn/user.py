"""OSN accounts.

An :class:`Account` separates two birth dates:

``real_birthday``
    Ground truth, known only to the simulation (and to our evaluation
    code).  No OSN interface ever exposes it.

``registered_birthday``
    What the user typed at sign-up.  The COPPA-driven under-13 ban means
    many children lie here (paper, Section 1), and *everything* the site
    does — search eligibility, the minor privacy policy, the public
    profile — keys off this registered date.  The gap between the two
    dates is precisely what the paper's attack exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from .privacy import PrivacySettings
from .profile import Birthday, Profile


@dataclass
class Account:
    """A registered OSN user.

    ``person_id`` links back to the world generator's ground-truth person
    (``None`` for accounts created directly, e.g. the attacker's fake
    crawl accounts).  ``friend_ids`` is maintained by the network's graph
    and mirrored here for convenience.
    """

    user_id: int
    profile: Profile
    registered_birthday: Birthday
    real_birthday: Birthday
    settings: PrivacySettings = field(default_factory=PrivacySettings)
    person_id: Optional[int] = None
    created_at_year: float = 2008.0
    is_fake: bool = False
    disabled: bool = False
    friend_ids: Set[int] = field(default_factory=set)

    def registered_age(self, now_year_fraction: float) -> float:
        """Age according to the birth date given at registration."""
        return self.registered_birthday.age_at(now_year_fraction)

    def real_age(self, now_year_fraction: float) -> float:
        """True age (ground truth; never exposed by the OSN)."""
        return self.real_birthday.age_at(now_year_fraction)

    def is_registered_minor(self, now_year_fraction: float, adult_age: float = 18.0) -> bool:
        """Whether the *site* believes this user is currently a minor."""
        return self.registered_age(now_year_fraction) < adult_age

    def is_actual_minor(self, now_year_fraction: float, adult_age: float = 18.0) -> bool:
        """Whether the user actually is a minor (ground truth)."""
        return self.real_age(now_year_fraction) < adult_age

    def lied_about_age(self) -> bool:
        """Whether the registered birth year differs from the real one."""
        return self.registered_birthday.year != self.real_birthday.year

    @property
    def friend_count(self) -> int:
        return len(self.friend_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Account(id={self.user_id}, name={self.profile.name.full!r}, "
            f"reg_by={self.registered_birthday.year}, real_by={self.real_birthday.year})"
        )
