"""Simulated time for the OSN and its crawlers.

The paper's crawler implements "sleeping functions" to stay polite
(Section 3.2).  Re-running experiments must not actually sleep, so both
the OSN's rate limiter and the crawler's politeness layer draw time from
a :class:`SimClock` that only advances when a component explicitly sleeps
or when work is accounted for.

The clock also tracks the simulation's *calendar date*, because the
attack's semantics depend on "the current year" (who counts as a current
student, who is a registered adult).  Dates are modelled as fractional
years for simplicity; ``date_of(2012.25)`` is around April 2012, which is
when the paper collected the HS1 data set.
"""

from __future__ import annotations

from dataclasses import dataclass, field


SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass
class SimClock:
    """A monotonically advancing simulated clock.

    Parameters
    ----------
    now_year:
        The calendar instant as a fractional year (e.g. ``2012.25``).
    """

    now_year: float = 2012.25
    _elapsed_seconds: float = field(default=0.0, repr=False)

    @property
    def elapsed_seconds(self) -> float:
        """Total simulated seconds advanced since the clock was created."""
        return self._elapsed_seconds

    def seconds(self) -> float:
        """Current simulated time in seconds (monotonic)."""
        return self._elapsed_seconds

    def sleep(self, seconds: float) -> None:
        """Advance the clock by ``seconds`` without real-world waiting."""
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {seconds}")
        self._elapsed_seconds += seconds  # repro-lint: shared(SimClock) -- simulated time is one global timeline by definition; the scheduler serialises advances
        self.now_year += seconds / SECONDS_PER_YEAR  # repro-lint: shared(SimClock) -- same global timeline as _elapsed_seconds

    def advance_to(self, seconds: float) -> None:
        """Advance to an absolute simulated instant (in seconds).

        The concurrent crawl scheduler computes each session's wake-up
        instant and advances the shared clock to the *earliest* one —
        summing per-session sleeps (what :meth:`sleep` does) would count
        overlapping waits twice.  Advancing to an instant already in the
        past is a hard error: simulated time is monotonic by contract.
        """
        delta = seconds - self._elapsed_seconds
        if delta < 0:
            raise ValueError(
                f"cannot advance to {seconds} — already at {self._elapsed_seconds}"
            )
        if delta > 0:
            self.sleep(delta)

    def advance_years(self, years: float) -> None:
        """Advance the calendar by ``years`` (used by world generators)."""
        if years < 0:
            raise ValueError(f"cannot advance time backwards: {years}")
        self.now_year += years
        self._elapsed_seconds += years * SECONDS_PER_YEAR

    @property
    def current_year(self) -> int:
        """The whole calendar year (e.g. 2012)."""
        return int(self.now_year)

    def age_of(self, birth_year_fraction: float) -> float:
        """Age in fractional years of someone born at ``birth_year_fraction``."""
        return self.now_year - birth_year_fraction

    def copy(self) -> "SimClock":
        """An independent clock frozen at the same instant."""
        return SimClock(now_year=self.now_year, _elapsed_seconds=self._elapsed_seconds)


def school_class_year(now_year_fraction: float) -> float:
    """The graduation year of the *current senior class* at this instant.

    US school years straddle calendar years: in November 2011 the senior
    class graduates in June 2012.  Classes graduate around mid-year, so
    any instant past ~July belongs to the school year that graduates the
    following calendar year.
    """
    year = int(now_year_fraction)
    if now_year_fraction - year > 0.5:
        year += 1
    return year
