"""What a viewer actually sees: rendered profile views.

A :class:`ProfileView` is the policy-filtered projection of an account's
profile for one particular viewer.  The crawler only ever receives
(an HTML rendering of) these views — never raw accounts — which keeps
the attack honestly black-box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .privacy import MINIMAL_FIELDS, ProfileField
from .profile import Gender, SchoolAffiliation


@dataclass(frozen=True)
class WallPostView:
    """A wall post as a stranger sees it: author id plus text.

    Author ids on public walls are the observable *interaction graph*
    the paper's cited optimizations build on.
    """

    author_id: int
    text: str


@dataclass(frozen=True)
class ProfileView:
    """A single profile as seen by one viewer.

    Any attribute the viewer may not see is ``None`` (or an empty tuple
    for collections).  ``friend_list_visible`` indicates whether the
    friends page exists for this viewer; the actual list is fetched
    separately (it is paginated).
    """

    user_id: int
    name: str
    gender: Optional[Gender] = None
    networks: Tuple[str, ...] = ()
    has_profile_photo: bool = False
    high_schools: Tuple[SchoolAffiliation, ...] = ()
    relationship_status: Optional[str] = None
    interested_in: Optional[str] = None
    birthday_year: Optional[int] = None
    hometown: Optional[str] = None
    current_city: Optional[str] = None
    employer: Optional[str] = None
    graduate_school: Optional[str] = None
    photo_count: Optional[int] = None
    wall_post_count: Optional[int] = None
    wall_posts: Tuple[WallPostView, ...] = ()
    contact_email: Optional[str] = None
    contact_phone: Optional[str] = None
    friend_list_visible: bool = False
    message_button: bool = False
    public_search_listed: bool = False

    def visible_field_names(self) -> Tuple[str, ...]:
        """Names of extended fields present in this view (for reports)."""
        present = []
        if self.high_schools:
            present.append(ProfileField.HIGH_SCHOOL.value)
        if self.relationship_status is not None:
            present.append(ProfileField.RELATIONSHIP.value)
        if self.interested_in is not None:
            present.append(ProfileField.INTERESTED_IN.value)
        if self.birthday_year is not None:
            present.append(ProfileField.BIRTHDAY.value)
        if self.hometown is not None:
            present.append(ProfileField.HOMETOWN.value)
        if self.current_city is not None:
            present.append(ProfileField.CURRENT_CITY.value)
        if self.employer is not None:
            present.append(ProfileField.EMPLOYER.value)
        if self.graduate_school is not None:
            present.append(ProfileField.GRADUATE_SCHOOL.value)
        if self.photo_count is not None:
            present.append(ProfileField.PHOTOS.value)
        if self.wall_post_count is not None:
            present.append(ProfileField.WALL.value)
        if self.contact_email is not None or self.contact_phone is not None:
            present.append(ProfileField.CONTACT_INFO.value)
        if self.friend_list_visible:
            present.append(ProfileField.FRIEND_LIST.value)
        return tuple(present)

    def is_minimal(self) -> bool:
        """Whether this view contains only "minimal information".

        The paper's Section 3.1 definition: at most name, profile photo,
        networks and gender are visible, and the Message button is
        absent.  The without-COPPA heuristic (Section 7.1 step 3) keys on
        exactly this predicate.
        """
        return not self.visible_field_names() and not self.message_button

    def claims_current_student(self, school_id: int, current_year: int) -> bool:
        """Whether the view self-identifies as a current student of ``school_id``."""
        affiliation = next(
            (a for a in self.high_schools if a.school_id == school_id), None
        )
        return affiliation is not None and affiliation.is_current_student(current_year)


#: Field names that belong to the minimal-information set, as strings.
MINIMAL_FIELD_NAMES = frozenset(f.value for f in MINIMAL_FIELDS)
