"""The attacker-visible OSN vocabulary — safe for crawler/core to import.

Everything re-exported here is information the OSN's stranger-facing
interface serves in rendered pages: directory rows from people search,
school listings, and the enum/value types those pages are parsed into.
The lint rule ``ORACLE001`` confines ``repro.crawler`` and
``repro.core`` to this module (plus ``frontend``, ``pages``, ``view``,
``errors`` and ``clock``); the simulator's stateful internals
(``network``, ``profile.Profile``, ``privacy``, ``user``) stay off
limits.

Keep this surface minimal: adding a name here widens what every
attacker-side module may see, so each addition should be something a
real stranger-level crawler could have parsed off a page.
"""

from .network import DirectoryEntry, School
from .profile import Gender, Name, SchoolAffiliation

__all__ = [
    "DirectoryEntry",
    "Gender",
    "Name",
    "School",
    "SchoolAffiliation",
]
