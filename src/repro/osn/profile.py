"""Profile data carried by an OSN account.

A profile stores what the user *entered*; visibility is decided elsewhere
(``repro.osn.network`` consults the policy engine).  Fields mirror the
attributes the paper's crawler extracts from public profile pages:
name, gender, networks, profile photo, school affiliations with class
year, relationship status, "interested in", birthday, hometown, current
city, photos, wall posts and contact information (Tables 1 and 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Gender(str, enum.Enum):
    FEMALE = "female"
    MALE = "male"
    UNSPECIFIED = "unspecified"


@dataclass(frozen=True)
class Name:
    """A user's display name."""

    first: str
    last: str

    @property
    def full(self) -> str:
        return f"{self.first} {self.last}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.full


@dataclass(frozen=True)
class SchoolAffiliation:
    """A school listed on a profile, with its class (graduation) year.

    ``graduation_year`` is what the user typed; a current student lists
    the current year or a future year (paper, Section 4.1 step 2), an
    alumnus lists a past year.  ``graduation_year`` may be ``None`` when
    the user listed the school without a class year; such users cannot be
    core users because the attack needs the year.
    """

    school_id: int
    school_name: str
    graduation_year: Optional[int] = None

    def is_current_student(self, current_year: int) -> bool:
        """Whether this affiliation claims *current* enrolment.

        Mirrors the paper's rule: the listed graduation year is the
        current year or a future year.
        """
        return self.graduation_year is not None and self.graduation_year >= current_year


@dataclass(frozen=True)
class Birthday:
    """A (registered) birth date at day granularity.

    We track the year exactly and the day-of-year approximately via a
    fractional component; the attack only ever uses the year.
    """

    year: int
    fraction: float = 0.5  # mid-year by default

    @property
    def as_year_fraction(self) -> float:
        return self.year + self.fraction

    def age_at(self, now_year_fraction: float) -> float:
        return now_year_fraction - self.as_year_fraction


@dataclass(frozen=True)
class ContactInfo:
    """Contact details some adults expose (Table 5 'contact information')."""

    email: Optional[str] = None
    phone: Optional[str] = None
    im_screen_name: Optional[str] = None
    street_address: Optional[str] = None

    def is_empty(self) -> bool:
        return not any((self.email, self.phone, self.im_screen_name, self.street_address))


@dataclass(frozen=True)
class WallPost:
    """A single wall posting (author and a short text)."""

    author_id: int
    text: str


@dataclass
class Profile:
    """Everything a user entered on their profile.

    ``high_schools`` is a tuple because users occasionally list more than
    one high school (the Section 4.4 "different high school" filter rule
    exploits exactly that).  ``photo_count`` stands in for the shared
    photo albums the paper counts in Table 5; we do not model image
    bytes, only their existence and count.
    """

    name: Name
    gender: Gender = Gender.UNSPECIFIED
    networks: Tuple[str, ...] = ()
    has_profile_photo: bool = True
    high_schools: Tuple[SchoolAffiliation, ...] = ()
    relationship_status: Optional[str] = None
    interested_in: Optional[str] = None
    birthday: Optional[Birthday] = None
    hometown: Optional[str] = None
    current_city: Optional[str] = None
    employer: Optional[str] = None
    graduate_school: Optional[str] = None
    photo_count: int = 0
    wall_posts: List[WallPost] = field(default_factory=list)
    contact_info: Optional[ContactInfo] = None

    def primary_high_school(self) -> Optional[SchoolAffiliation]:
        """The most recently listed high school, if any."""
        return self.high_schools[-1] if self.high_schools else None

    def lists_school(self, school_id: int) -> bool:
        return any(a.school_id == school_id for a in self.high_schools)

    def affiliation_for(self, school_id: int) -> Optional[SchoolAffiliation]:
        for affiliation in self.high_schools:
            if affiliation.school_id == school_id:
                return affiliation
        return None
