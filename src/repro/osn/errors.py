"""Exception hierarchy for the simulated Online Social Network.

The frontend mimics an HTTP site, so most errors carry an HTTP-like status
code.  The crawler layer catches these to implement back-off and account
rotation, exactly as a real crawler must when scraping a production OSN.
"""

from __future__ import annotations


class OsnError(Exception):
    """Base class for every error raised by the OSN simulator."""

    status_code = 500

    def __init__(self, message: str = ""):
        super().__init__(message or self.__class__.__name__)
        self.message = message or self.__class__.__name__


class BadRequestError(OsnError):
    """Malformed request (unknown route, bad parameter types)."""

    status_code = 400


class NotFoundError(OsnError):
    """The referenced user, school or page does not exist."""

    status_code = 404


class ForbiddenError(OsnError):
    """The requested content exists but is not visible to the viewer."""

    status_code = 403


class AuthenticationError(OsnError):
    """The request carried no valid logged-in session."""

    status_code = 401


class AccountDisabledError(OsnError):
    """The account has been disabled (e.g. by the anti-crawling defence).

    Real OSNs temporarily or permanently disable accounts that fetch too
    many pages too quickly (paper, Section 4.5).  The rate limiter raises
    this when a crawl account exceeds its request budget.
    """

    status_code = 403


class RateLimitedError(OsnError):
    """Transient throttling response; the client should slow down.

    Carries ``retry_after`` in (simulated) seconds.  Repeated violations
    escalate to :class:`AccountDisabledError`.
    """

    status_code = 429

    def __init__(self, message: str = "", retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class RegistrationError(OsnError):
    """Account creation rejected (e.g. registered birth date under 13)."""

    status_code = 400


class PolicyError(OsnError):
    """Internal misuse of the policy engine (programming error)."""

    status_code = 500


class ParseError(OsnError):
    """A crawled page could not be parsed into the expected structure."""

    status_code = 500
