"""The columnar world layout: parallel typed columns keyed by integer id.

Two tables:

* **people** — one row per ground-truth person (row index == person id):
  birth instant, role, gender, school/cohort, attendance, household and
  interned name/city/address ids.
* **accounts** — one row per OSN account (row index == user id; worldgen
  assigns uids densely in creation order): the person behind it, both
  birth dates, creation instant, and the complete privacy configuration
  packed into one 64-bit lattice word.

Strings live once in :class:`StringTable` vocabularies; columns hold
int32 ids.  Sentinel ``-1`` encodes "absent" everywhere a legacy field
is ``Optional``.

The privacy word packs, in ascending bit order: 17 per-field audiences
(2 bits each), a 17-bit "explicitly set" mask (so the exact legacy
``audiences`` mapping — not just its effective lookup — round-trips),
the default audience, the public-search flag and the message audience.
Decoding rebuilds a :class:`~repro.osn.privacy.PrivacySettings` that
compares **equal** to the original dataclass; the equivalence suite in
``tests/test_colgen_equivalence.py`` holds the layout to that bar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.osn.privacy import Audience, PrivacySettings, ProfileField
from repro.osn.profile import (
    Birthday,
    ContactInfo,
    Gender,
    Name,
    Profile,
    SchoolAffiliation,
    WallPost,
)

from .backend import FloatBuffer, IntBuffer, buffer_nbytes
from .csr import CSRGraph

#: Fixed field order for the packed audiences (declaration order is part
#: of the on-disk/in-memory contract; never reorder without a version bump).
PRIVACY_FIELD_ORDER: Tuple[ProfileField, ...] = tuple(ProfileField)

_N_FIELDS = len(PRIVACY_FIELD_ORDER)
_MASK_SHIFT = 2 * _N_FIELDS
_DEFAULT_SHIFT = _MASK_SHIFT + _N_FIELDS
_SEARCH_SHIFT = _DEFAULT_SHIFT + 2
_MESSAGE_SHIFT = _SEARCH_SHIFT + 1

assert _MESSAGE_SHIFT + 2 <= 64, "privacy word must fit in 64 bits"

#: Public aliases for the vectorised generator, which edits packed words
#: in bulk instead of round-tripping through PrivacySettings objects.
PRIVACY_SEARCH_SHIFT = _SEARCH_SHIFT
PRIVACY_MESSAGE_SHIFT = _MESSAGE_SHIFT
PRIVACY_DEFAULT_SHIFT = _DEFAULT_SHIFT

_FIELD_POSITION: Dict[ProfileField, int] = {
    f: i for i, f in enumerate(PRIVACY_FIELD_ORDER)
}


def audience_shift(field_: ProfileField) -> int:
    """Bit offset of one field's 2-bit audience inside the packed word."""
    return 2 * _FIELD_POSITION[field_]


def pack_privacy(settings: PrivacySettings) -> int:
    """Pack a :class:`PrivacySettings` into one 64-bit word."""
    word = 0
    for i, field_ in enumerate(PRIVACY_FIELD_ORDER):
        if field_ in settings.audiences:
            word |= 1 << (_MASK_SHIFT + i)
            word |= int(settings.audiences[field_]) << (2 * i)
    word |= int(settings.default) << _DEFAULT_SHIFT
    word |= int(bool(settings.public_search)) << _SEARCH_SHIFT
    word |= int(settings.message_audience) << _MESSAGE_SHIFT
    return word


def unpack_privacy(word: int) -> PrivacySettings:
    """Rebuild the exact :class:`PrivacySettings` a word was packed from."""
    word = int(word)
    audiences: Dict[ProfileField, Audience] = {}
    for i, field_ in enumerate(PRIVACY_FIELD_ORDER):
        if word >> (_MASK_SHIFT + i) & 1:
            audiences[field_] = Audience(word >> (2 * i) & 0b11)
    return PrivacySettings(
        audiences=audiences,
        default=Audience(word >> _DEFAULT_SHIFT & 0b11),
        public_search=bool(word >> _SEARCH_SHIFT & 1),
        message_audience=Audience(word >> _MESSAGE_SHIFT & 0b11),
    )


class StringTable:
    """An interning vocabulary: string <-> dense int32 id."""

    def __init__(self, values: Optional[List[str]] = None) -> None:
        self.values: List[str] = list(values or [])
        self._ids: Dict[str, int] = {v: i for i, v in enumerate(self.values)}

    def intern(self, value: Optional[str]) -> int:
        """Id for ``value`` (interning it if new); -1 for ``None``."""
        if value is None:
            return -1
        found = self._ids.get(value)
        if found is None:
            found = len(self.values)
            self.values.append(value)
            self._ids[value] = found
        return found

    def lookup(self, string_id: int) -> Optional[str]:
        return None if string_id < 0 else self.values[string_id]

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class PeopleColumns:
    """The ground-truth population as parallel columns (row == person id)."""

    birth_year_fraction: FloatBuffer
    role: IntBuffer            # Role ordinal (views.ROLE_ORDER)
    gender: IntBuffer          # Gender ordinal (views.GENDER_ORDER)
    school_index: IntBuffer    # -1 when unaffiliated
    cohort_year: IntBuffer     # -1 when not cohorted
    tenure_years: FloatBuffer
    left_years_ago: FloatBuffer
    household_id: IntBuffer    # -1 when no household
    first_name_id: IntBuffer
    last_name_id: IntBuffer
    city_id: IntBuffer
    street_id: IntBuffer       # -1 when no street address

    def __len__(self) -> int:
        return len(self.role)

    @property
    def nbytes(self) -> int:
        return sum(buffer_nbytes(getattr(self, f)) for f in self.__dataclass_fields__)


@dataclass
class AccountColumns:
    """Every OSN account as parallel columns (row == user id)."""

    person_id: IntBuffer            # -1 for accounts with no ground-truth person
    registered_birth_year: IntBuffer
    registered_birth_fraction: FloatBuffer
    real_birth_year: IntBuffer
    real_birth_fraction: FloatBuffer
    created_at_year: FloatBuffer
    is_fake: IntBuffer
    privacy: IntBuffer              # 64-bit packed words (pack_privacy)

    def __len__(self) -> int:
        return len(self.person_id)

    @property
    def nbytes(self) -> int:
        return sum(buffer_nbytes(getattr(self, f)) for f in self.__dataclass_fields__)


#: Gender ordinals for :class:`ProfileColumns` (mirrors views.GENDER_ORDER;
#: duplicated here so columns.py stays import-cycle-free with views.py).
GENDER_ORDER: Tuple[Gender, ...] = tuple(Gender)


@dataclass
class ProfileColumns:
    """Every account's *profile* as parallel columns (row == account row).

    Filled by :func:`~repro.colgen.encode.encode_world` so the columnar
    serve path (:mod:`repro.colgen.serve`) can rebuild each
    :class:`~repro.osn.profile.Profile` exactly — field-for-field equal
    to the object world's, which is what makes columnar page serving
    byte-identical.  Native vectorised tiers carry no profile columns
    (``ColumnarWorld.profiles is None``) and serve a documented
    synthesised projection instead.

    Variable-length fields (networks, school affiliations, wall posts)
    are ragged arrays: ``<x>_indptr`` of length ``n_accounts + 1``
    delimits row ``i``'s slice of the value columns, CSR-style.  All
    strings are ids into one shared profile vocabulary; ``-1`` is
    ``None`` throughout.
    """

    first_name_id: IntBuffer
    last_name_id: IntBuffer
    gender: IntBuffer              # Gender ordinal (GENDER_ORDER)
    has_profile_photo: IntBuffer
    has_birthday: IntBuffer        # whether profile.birthday was set
    birthday_year: IntBuffer       # -1 when no birthday
    birthday_fraction: FloatBuffer
    relationship_id: IntBuffer
    interested_in_id: IntBuffer
    hometown_id: IntBuffer
    current_city_id: IntBuffer
    employer_id: IntBuffer
    graduate_school_id: IntBuffer
    photo_count: IntBuffer
    has_contact: IntBuffer         # whether profile.contact_info was set
    contact_email_id: IntBuffer
    contact_phone_id: IntBuffer
    contact_im_id: IntBuffer
    contact_street_id: IntBuffer
    networks_indptr: IntBuffer
    network_id: IntBuffer
    hs_indptr: IntBuffer
    hs_school_id: IntBuffer
    hs_name_id: IntBuffer
    hs_grad_year: IntBuffer        # -1 when no graduation year
    wall_indptr: IntBuffer
    wall_author: IntBuffer
    wall_text_id: IntBuffer

    def __len__(self) -> int:
        return len(self.gender)

    @property
    def nbytes(self) -> int:
        return sum(buffer_nbytes(getattr(self, f)) for f in self.__dataclass_fields__)


def decode_profile(
    cols: ProfileColumns, strings: "StringTable", row: int
) -> Profile:
    """Rebuild row ``row``'s exact legacy :class:`Profile` object."""
    lookup = strings.lookup
    birthday = None
    if cols.has_birthday[row]:
        birthday = Birthday(
            year=int(cols.birthday_year[row]),
            fraction=float(cols.birthday_fraction[row]),
        )
    contact = None
    if cols.has_contact[row]:
        contact = ContactInfo(
            email=lookup(int(cols.contact_email_id[row])),
            phone=lookup(int(cols.contact_phone_id[row])),
            im_screen_name=lookup(int(cols.contact_im_id[row])),
            street_address=lookup(int(cols.contact_street_id[row])),
        )
    nw_lo, nw_hi = int(cols.networks_indptr[row]), int(cols.networks_indptr[row + 1])
    hs_lo, hs_hi = int(cols.hs_indptr[row]), int(cols.hs_indptr[row + 1])
    wp_lo, wp_hi = int(cols.wall_indptr[row]), int(cols.wall_indptr[row + 1])
    return Profile(
        name=Name(
            first=lookup(int(cols.first_name_id[row])) or "",
            last=lookup(int(cols.last_name_id[row])) or "",
        ),
        gender=GENDER_ORDER[int(cols.gender[row])],
        networks=tuple(
            lookup(int(cols.network_id[i])) or "" for i in range(nw_lo, nw_hi)
        ),
        has_profile_photo=bool(cols.has_profile_photo[row]),
        high_schools=tuple(
            SchoolAffiliation(
                school_id=int(cols.hs_school_id[i]),
                school_name=lookup(int(cols.hs_name_id[i])) or "",
                graduation_year=(
                    int(cols.hs_grad_year[i])
                    if int(cols.hs_grad_year[i]) >= 0
                    else None
                ),
            )
            for i in range(hs_lo, hs_hi)
        ),
        relationship_status=lookup(int(cols.relationship_id[row])),
        interested_in=lookup(int(cols.interested_in_id[row])),
        birthday=birthday,
        hometown=lookup(int(cols.hometown_id[row])),
        current_city=lookup(int(cols.current_city_id[row])),
        employer=lookup(int(cols.employer_id[row])),
        graduate_school=lookup(int(cols.graduate_school_id[row])),
        photo_count=int(cols.photo_count[row]),
        wall_posts=[
            WallPost(
                author_id=int(cols.wall_author[i]),
                text=lookup(int(cols.wall_text_id[i])) or "",
            )
            for i in range(wp_lo, wp_hi)
        ],
        contact_info=contact,
    )


@dataclass
class ColumnarWorld:
    """A generated world in columnar form.

    This is the scale-proof representation: ~100 bytes/person of columns
    plus 8 bytes per friendship endpoint, versus multiple kilobytes per
    user on the object path.  The lazy object API over it lives in
    :mod:`repro.colgen.views`; ``csr`` is ``None`` only for
    generation-only tiers (``metro``) that never materialise adjacency.
    """

    tier: str
    seed: int
    observation_year: float
    people: PeopleColumns
    accounts: AccountColumns
    csr: Optional[CSRGraph]
    names: StringTable
    cities: StringTable
    streets: StringTable
    #: first user id (legacy worldgen starts at 1; native tiers at 0).
    #: Row ``i`` of accounts/CSR holds user ``uid_base + i``; the public
    #: API below always speaks raw user ids.
    uid_base: int = 0
    #: (name, city) per school index, aligned with ``people.school_index``.
    schools: List[Tuple[str, str]] = field(default_factory=list)
    #: person id -> user id (dense dict; built by encoder/generator)
    person_to_user: Dict[int, int] = field(default_factory=dict)
    #: native tiers assign row i of both tables to the same entity, so
    #: person id == user id and no million-entry mapping dict is built.
    identity_mapping: bool = False
    #: phase timings and counters filled in by the generator/bench layer.
    stats: Dict[str, float] = field(default_factory=dict)
    #: exact per-account profile columns (encoder-built worlds only;
    #: ``None`` on native tiers, which synthesise profiles at serve time).
    profiles: Optional[ProfileColumns] = None
    #: vocabulary for every string referenced by ``profiles``.
    profile_strings: StringTable = field(default_factory=StringTable)
    #: the *complete* school directory as served — (school_id, name,
    #: city, enrollment_hint) — including noise schools that
    #: ``schools`` (config schools only, aligned with
    #: ``people.school_index``) does not carry.
    directory: List[Tuple[int, str, str, Optional[int]]] = field(
        default_factory=list
    )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def n_people(self) -> int:
        return len(self.people)

    @property
    def n_accounts(self) -> int:
        return len(self.accounts)

    @property
    def n_edges(self) -> int:
        return self.csr.edge_count() if self.csr is not None else 0

    @property
    def column_nbytes(self) -> int:
        return self.people.nbytes + self.accounts.nbytes

    @property
    def graph_nbytes(self) -> int:
        return self.csr.nbytes if self.csr is not None else 0

    # ------------------------------------------------------------------
    # Id mapping (AccountIndex vocabulary)
    # ------------------------------------------------------------------
    def user_for(self, person_id: int) -> Optional[int]:
        if self.identity_mapping:
            if 0 <= person_id < self.n_accounts:
                return person_id + self.uid_base
            return None
        return self.person_to_user.get(person_id)

    def person_for(self, user_id: int) -> Optional[int]:
        pid = int(self.accounts.person_id[self._row(user_id)])
        return None if pid < 0 else pid

    def _row(self, user_id: int) -> int:
        """Column/CSR row for a raw user id."""
        row = user_id - self.uid_base
        if not 0 <= row < self.n_accounts:
            raise IndexError(f"unknown user id {user_id}")
        return row

    # ------------------------------------------------------------------
    # Friendship queries
    # ------------------------------------------------------------------
    def _graph(self) -> CSRGraph:
        if self.csr is None:
            raise RuntimeError(
                f"tier {self.tier!r} is generation-only: no adjacency was "
                "materialised (columns and degrees only)"
            )
        return self.csr

    def friends(self, user_id: int) -> List[int]:
        """Sorted friend ids of ``user_id``."""
        base = self.uid_base
        row = self._graph().neighbors_list(self._row(user_id))
        return [n + base for n in row] if base else row

    def friend_set(self, user_id: int) -> frozenset:
        return frozenset(self.friends(user_id))

    def degree(self, user_id: int) -> int:
        return self._graph().degree(self._row(user_id))

    def are_friends(self, a: int, b: int) -> bool:
        return self._graph().are_friends(self._row(a), self._row(b))

    # ------------------------------------------------------------------
    # Privacy / ages
    # ------------------------------------------------------------------
    def privacy_settings(self, user_id: int) -> PrivacySettings:
        """The account's privacy configuration, decoded lazily."""
        return unpack_privacy(self.accounts.privacy[self._row(user_id)])

    def registered_birth_instant(self, user_id: int) -> float:
        row = self._row(user_id)
        return float(self.accounts.registered_birth_year[row]) + float(
            self.accounts.registered_birth_fraction[row]
        )

    def real_birth_instant(self, user_id: int) -> float:
        row = self._row(user_id)
        return float(self.accounts.real_birth_year[row]) + float(
            self.accounts.real_birth_fraction[row]
        )

    def is_registered_minor(self, user_id: int, adult_age: float = 18.0) -> bool:
        return self.observation_year - self.registered_birth_instant(user_id) < adult_age
