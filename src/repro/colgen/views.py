"""Lazy object views over the columns.

The crawl/attack pipeline and the seed tests speak the object
vocabulary: :class:`~repro.worldgen.population.Person`,
:class:`~repro.osn.privacy.PrivacySettings`, friendship sets.  These
views decode single rows on demand — a ``Person`` is materialised only
when someone asks for it, so holding a million-row world costs columns,
not objects.

The decoding contract is exact: for a world encoded from the legacy
generator, ``person(pid)`` compares equal (``==``, field for field) to
the legacy ``Person`` and ``privacy_settings(uid)`` to the legacy
``PrivacySettings``.  ``tests/test_colgen_equivalence.py`` enforces this
bit-for-bit at the ``paper`` tier.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.osn.profile import Gender, Name
from repro.worldgen.population import Person, Role

from .columns import ColumnarWorld

#: Ordinal encodings for the enum columns.  Declaration order is the
#: contract (same stability rule as PRIVACY_FIELD_ORDER).
ROLE_ORDER: Tuple[Role, ...] = tuple(Role)
GENDER_ORDER: Tuple[Gender, ...] = tuple(Gender)

ROLE_TO_ORDINAL: Dict[Role, int] = {r: i for i, r in enumerate(ROLE_ORDER)}
GENDER_TO_ORDINAL: Dict[Gender, int] = {g: i for i, g in enumerate(GENDER_ORDER)}


def person_view(world: ColumnarWorld, person_id: int) -> Person:
    """Decode one person row into a full legacy :class:`Person`."""
    cols = world.people
    school_index = int(cols.school_index[person_id])
    cohort_year = int(cols.cohort_year[person_id])
    household = int(cols.household_id[person_id])
    return Person(
        person_id=person_id,
        name=Name(
            world.names.lookup(int(cols.first_name_id[person_id])) or "",
            world.names.lookup(int(cols.last_name_id[person_id])) or "",
        ),
        gender=GENDER_ORDER[int(cols.gender[person_id])],
        birth_year_fraction=float(cols.birth_year_fraction[person_id]),
        role=ROLE_ORDER[int(cols.role[person_id])],
        city=world.cities.lookup(int(cols.city_id[person_id])) or "",
        school_index=None if school_index < 0 else school_index,
        cohort_year=None if cohort_year < 0 else cohort_year,
        tenure_years=float(cols.tenure_years[person_id]),
        left_years_ago=float(cols.left_years_ago[person_id]),
        household_id=None if household < 0 else household,
        street_address=world.streets.lookup(int(cols.street_id[person_id])),
    )


class PopulationView:
    """A read-only, lazily-decoding stand-in for
    :class:`~repro.worldgen.population.Population`.

    Role/school indexes are derived from the columns on first use and
    cached; individual ``Person`` objects are decoded per call and NOT
    cached (callers that loop should hold what they need).
    """

    def __init__(self, world: ColumnarWorld) -> None:
        self._world = world
        self._by_role: Optional[Dict[Role, List[int]]] = None
        self._households: Optional[Dict[int, Tuple[List[int], List[int]]]] = None

    def __len__(self) -> int:
        return self._world.n_people

    def person(self, person_id: int) -> Person:
        return person_view(self._world, person_id)

    def __iter__(self) -> Iterator[Person]:
        for pid in range(len(self)):
            yield self.person(pid)

    # ------------------------------------------------------------------
    # Derived indexes (computed by scanning columns, then cached)
    # ------------------------------------------------------------------
    def _role_index(self) -> Dict[Role, List[int]]:
        if self._by_role is None:
            by_role: Dict[Role, List[int]] = {}
            role_col = self._world.people.role
            for pid in range(len(self)):
                by_role.setdefault(ROLE_ORDER[int(role_col[pid])], []).append(pid)
            self._by_role = by_role
        return self._by_role

    def ids_with_role(self, role: Role) -> List[int]:
        return self._role_index().get(role, [])

    def students_by_school(self, school_index: int) -> Dict[int, List[int]]:
        """Cohort year -> current-student person ids (legacy shape)."""
        cols = self._world.people
        out: Dict[int, List[int]] = {}
        for pid in self.ids_with_role(Role.STUDENT):
            if int(cols.school_index[pid]) == school_index:
                out.setdefault(int(cols.cohort_year[pid]), []).append(pid)
        return out

    def households(self) -> Dict[int, Tuple[List[int], List[int]]]:
        """Household id -> (student person ids, parent person ids)."""
        if self._households is None:
            cols = self._world.people
            homes: Dict[int, Tuple[List[int], List[int]]] = {}
            for pid in range(len(self)):
                hid = int(cols.household_id[pid])
                if hid < 0:
                    continue
                children, parents = homes.setdefault(hid, ([], []))
                role = ROLE_ORDER[int(cols.role[pid])]
                (parents if role is Role.PARENT else children).append(pid)
            self._households = homes
        return self._households
