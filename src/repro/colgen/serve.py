"""Serve the OSN's HTML surface directly off a :class:`ColumnarWorld`.

:class:`ColumnarNetwork` duck-types the slice of
:class:`~repro.osn.network.SocialNetwork` that
:class:`~repro.osn.frontend.HtmlFrontend` actually calls — relationship
classification, profile views, friend pages, both search surfaces, the
school directory and the contact verbs — but answers every read from
the flat columns and CSR adjacency instead of per-account objects.
That is what unlocks city-tier crawls: a million-account world held as
~100 bytes/user of columns is served page-by-page without ever
materialising a million ``Account`` objects.

Two serving regimes:

* **Encoder-built worlds** (``world.profiles is not None``): every
  profile field was column-packed losslessly, all pages render through
  the same :func:`~repro.osn.network.render_profile_view` + template
  pipeline as the object path, and the output is **byte-identical** to
  the object world's (``tests/test_colgen_serve.py`` holds it there).
* **Native vectorised tiers** (``world.profiles is None``): the
  generator never built profile objects, so the serve path synthesises
  a documented projection per account — name/gender/city from the
  person columns, one school affiliation from ``school_index`` /
  ``cohort_year``, registered birthday from the account columns, and
  empty wall/photo/contact surfaces.

The whole read path is mutation-free (PURE001 proves it across the
frontend call graph): all indexes are built eagerly in ``__init__``,
string tables are only ever ``lookup``-ed, and lazy ``Account`` views
are constructed per call, never cached.  The only mutable state is the
POST-only :class:`~repro.osn.messaging.ContactService` and the attacker
overlay registered up front via :meth:`add_session_accounts`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.osn.clock import SimClock
from repro.osn.errors import ForbiddenError, NotFoundError
from repro.osn.frontend import HtmlFrontend
from repro.osn.messaging import ContactService, FriendRequest, Message
from repro.osn.network import (
    DirectoryEntry,
    GraphSearchQuery,
    School,
    render_profile_view,
)
from repro.osn.policy import SitePolicy, facebook_policy
from repro.osn.privacy import PrivacySettings, ProfileField, Relationship
from repro.osn.profile import Birthday, Name, Profile, SchoolAffiliation
from repro.osn.ratelimit import RateLimitConfig
from repro.osn.rendercache import RenderCache
from repro.osn.user import Account
from repro.osn.view import ProfileView

from .columns import ColumnarWorld, decode_profile
from .views import GENDER_ORDER

if False:  # pragma: no cover - typing only
    from repro.telemetry.runtime import Telemetry

#: Shared sentinel profile for *eligibility* account views: policy
#: predicates (search eligibility, friend-list audience, message button)
#: read only ``settings`` and ``registered_birthday``, so scans can skip
#: the full profile decode.  Never rendered.
_ELIGIBILITY_PROFILE = Profile(name=Name("", ""))


class _LazyUsers:
    """The ``network.users`` facade: lazily-decoded account lookups.

    The frontend only calls ``get`` (session authentication); the
    countermeasure path goes through the network's own helpers.  Returned
    accounts are *eligibility* views — settings and birthdays exact,
    profile a shared sentinel — decoded fresh per call, never cached.
    """

    def __init__(self, network: "ColumnarNetwork") -> None:
        self._network = network

    def get(self, user_id: int) -> Optional[Account]:
        network = self._network
        if not network._has_uid(user_id):
            return None
        return network._light_account(user_id)

    def __contains__(self, user_id: int) -> bool:
        return self._network._has_uid(user_id)

    def __len__(self) -> int:
        network = self._network
        return network.world.n_accounts + len(network._overlay)


class ColumnarNetwork:
    """A read-mostly :class:`SocialNetwork` stand-in over columns + CSR.

    Constructor knobs mirror ``SocialNetwork``'s so a columnar server
    can be configured identically to the object world it was encoded
    from (``search_salt`` defaults to the world's generation seed, which
    is exactly what ``build_world`` passes on the object path).
    """

    def __init__(
        self,
        world: ColumnarWorld,
        policy: Optional[SitePolicy] = None,
        clock: Optional[SimClock] = None,
        *,
        reverse_lookup_enabled: bool = True,
        search_result_cap: int = 256,
        search_page_size: int = 20,
        friends_page_size: int = 20,
        search_salt: Optional[int] = None,
    ) -> None:
        self.world = world
        self.policy = policy or facebook_policy()
        self.policy.validate()
        self.clock = clock or SimClock(now_year=world.observation_year)
        self.reverse_lookup_enabled = reverse_lookup_enabled
        self.search_result_cap = search_result_cap
        self.search_page_size = search_page_size
        self.friends_page_size = friends_page_size
        self.search_salt = world.seed if search_salt is None else search_salt

        self.contact = ContactService()
        self.users = _LazyUsers(self)
        #: session (attacker) accounts laid over the immutable columns.
        self._overlay: Dict[int, Account] = {}
        self._version = 0

        # School directory: encoder worlds carry the complete served
        # directory (config + noise schools); native tiers synthesise
        # ids 1..n from the generator's school list, matching the
        # registration order the object path would have used.
        if world.directory:
            self.schools: Dict[int, School] = {
                sid: School(sid, name, city, hint)
                for sid, name, city, hint in world.directory
            }
        else:
            self.schools = {
                i + 1: School(i + 1, name, city, None)
                for i, (name, city) in enumerate(world.schools)
            }

        # Eager member index (school id -> ascending uids), the serve
        # path's only scan structure.  Rows are visited in uid order so
        # each list is born sorted — same order the object network's
        # registration-time index produces.
        members: Dict[int, List[int]] = {}
        base = world.uid_base
        profiles = world.profiles
        if profiles is not None:
            indptr = profiles.hs_indptr
            school_col = profiles.hs_school_id
            for row in range(world.n_accounts):
                for i in range(int(indptr[row]), int(indptr[row + 1])):
                    members.setdefault(int(school_col[i]), []).append(base + row)
        else:
            person_col = world.accounts.person_id
            school_index = world.people.school_index
            for row in range(world.n_accounts):
                pid = int(person_col[row])
                if pid < 0:
                    continue
                idx = int(school_index[pid])
                if idx >= 0:
                    members.setdefault(idx + 1, []).append(base + row)
        self._school_members = members

    # ------------------------------------------------------------------
    # World version (render-cache invalidation contract)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone counter with the same contract as the object world's.

        The columns themselves are immutable, so only overlay
        registration bumps it; anything mutating world state out of band
        must call :meth:`bump_version` (see
        ``SocialNetwork.version``).
        """
        return self._version

    def bump_version(self) -> None:
        """Invalidate cached page renders after an out-of-band mutation."""
        self._version += 1

    # ------------------------------------------------------------------
    # Session (attacker) accounts
    # ------------------------------------------------------------------
    def add_session_accounts(self, count: int) -> List[int]:
        """Register ``count`` fake crawl accounts over the columns.

        Mirrors ``World.create_attacker_accounts`` — same profiles, same
        privacy settings, and uids continuing exactly where the encoded
        world's dense range ends, so a columnar crawl sees the same
        account numbering as an object crawl of the same world.
        """
        uids: List[int] = []
        world = self.world
        for i in range(count):
            uid = world.uid_base + world.n_accounts + len(self._overlay)
            account = Account(
                user_id=uid,
                profile=Profile(name=Name("Crawl", f"Account{i}")),
                registered_birthday=Birthday(1985),
                real_birthday=Birthday(1985),
                settings=PrivacySettings.everything_private(),
                person_id=None,
                created_at_year=self.clock.now_year,
                is_fake=True,
            )
            self._overlay[uid] = account
            self.bump_version()
            uids.append(uid)
        return uids

    # ------------------------------------------------------------------
    # Account decoding (lazy views; never cached, so reads stay pure)
    # ------------------------------------------------------------------
    def _has_uid(self, user_id: int) -> bool:
        if user_id in self._overlay:
            return True
        return 0 <= user_id - self.world.uid_base < self.world.n_accounts

    def _check_uid(self, user_id: int) -> None:
        if not self._has_uid(user_id):
            raise NotFoundError(f"no such user: {user_id}")

    def _row(self, user_id: int) -> int:
        return user_id - self.world.uid_base

    def _account(self, user_id: int, profile: Profile) -> Account:
        """Assemble an :class:`Account` around ``profile`` from columns."""
        world = self.world
        row = self._row(user_id)
        acc = world.accounts
        pid = int(acc.person_id[row])
        return Account(
            user_id=user_id,
            profile=profile,
            registered_birthday=Birthday(
                year=int(acc.registered_birth_year[row]),
                fraction=float(acc.registered_birth_fraction[row]),
            ),
            real_birthday=Birthday(
                year=int(acc.real_birth_year[row]),
                fraction=float(acc.real_birth_fraction[row]),
            ),
            settings=world.privacy_settings(user_id),
            person_id=None if pid < 0 else pid,
            created_at_year=float(acc.created_at_year[row]),
            is_fake=bool(int(acc.is_fake[row])),
        )

    def _light_account(self, user_id: int) -> Account:
        """Eligibility view: exact settings/birthdays, sentinel profile."""
        overlay = self._overlay.get(user_id)
        if overlay is not None:
            return overlay
        return self._account(user_id, _ELIGIBILITY_PROFILE)

    def get_account(self, user_id: int) -> Account:
        """Full account view (profile decoded); raises on unknown uid."""
        overlay = self._overlay.get(user_id)
        if overlay is not None:
            return overlay
        self._check_uid(user_id)
        return self._account(user_id, self._full_profile(self._row(user_id)))

    def _full_profile(self, row: int) -> Profile:
        world = self.world
        if world.profiles is not None:
            return decode_profile(world.profiles, world.profile_strings, row)
        return self._synth_profile(row)

    def _synth_profile(self, row: int) -> Profile:
        """The native tiers' documented profile projection (see module doc)."""
        world = self.world
        pid = int(world.accounts.person_id[row])
        if pid < 0:
            return Profile(name=Name("", ""))
        people = world.people
        lookup = world.names.lookup
        name = Name(
            lookup(int(people.first_name_id[pid])) or "",
            lookup(int(people.last_name_id[pid])) or "",
        )
        city = world.cities.lookup(int(people.city_id[pid]))
        idx = int(people.school_index[pid])
        cohort = int(people.cohort_year[pid])
        affiliations: Tuple[SchoolAffiliation, ...] = ()
        if idx >= 0:
            school = self.schools.get(idx + 1)
            affiliations = (
                SchoolAffiliation(
                    school_id=idx + 1,
                    school_name=school.name if school is not None else "",
                    graduation_year=cohort if cohort >= 0 else None,
                ),
            )
        return Profile(
            name=name,
            gender=GENDER_ORDER[int(people.gender[pid])],
            high_schools=affiliations,
            hometown=city,
            current_city=city,
        )

    def _display_name(self, user_id: int) -> str:
        overlay = self._overlay.get(user_id)
        if overlay is not None:
            return overlay.profile.name.full
        world = self.world
        row = self._row(user_id)
        profiles = world.profiles
        if profiles is not None:
            lookup = world.profile_strings.lookup
            return Name(
                lookup(int(profiles.first_name_id[row])) or "",
                lookup(int(profiles.last_name_id[row])) or "",
            ).full
        pid = int(world.accounts.person_id[row])
        if pid < 0:
            return ""
        people = world.people
        lookup = world.names.lookup
        return Name(
            lookup(int(people.first_name_id[pid])) or "",
            lookup(int(people.last_name_id[pid])) or "",
        ).full

    # ------------------------------------------------------------------
    # Graph queries (CSR; overlay accounts are friendless by design)
    # ------------------------------------------------------------------
    def _are_friends(self, a: int, b: int) -> bool:
        if a in self._overlay or b in self._overlay:
            return False
        return self.world.are_friends(a, b)

    def _has_mutual_friend(self, a: int, b: int) -> bool:
        if a in self._overlay or b in self._overlay:
            return False
        graph = self.world.csr
        if graph is None:
            raise RuntimeError(
                f"tier {self.world.tier!r} is generation-only: no adjacency"
            )
        return graph.mutual_friend_count(self._row(a), self._row(b)) > 0

    def _friend_ids(self, user_id: int) -> List[int]:
        if user_id in self._overlay:
            return []
        return self.world.friends(user_id)

    def _network_ids(self, user_id: int) -> Tuple[int, ...]:
        """Interned ids of ``profile.networks`` (shared vocabulary)."""
        if user_id in self._overlay:
            return ()
        profiles = self.world.profiles
        if profiles is None:
            return ()
        row = self._row(user_id)
        lo = int(profiles.networks_indptr[row])
        hi = int(profiles.networks_indptr[row + 1])
        return tuple(int(profiles.network_id[i]) for i in range(lo, hi))

    def friend_count(self, user_id: int) -> int:
        if user_id in self._overlay:
            return 0
        return self.world.degree(user_id)

    # ------------------------------------------------------------------
    # Viewer relationship / profile views (object-path semantics, exactly)
    # ------------------------------------------------------------------
    def relationship(
        self, viewer_id: Optional[int], target_id: int
    ) -> Relationship:
        self._check_uid(target_id)
        if viewer_id is None:
            return Relationship.STRANGER
        if viewer_id == target_id:
            return Relationship.SELF
        self._check_uid(viewer_id)
        if self._are_friends(viewer_id, target_id):
            return Relationship.FRIEND
        if self._has_mutual_friend(viewer_id, target_id):
            return Relationship.FRIEND_OF_FRIEND
        if set(self._network_ids(viewer_id)) & set(self._network_ids(target_id)):
            return Relationship.NETWORK_MEMBER
        return Relationship.STRANGER

    def view_profile(
        self, viewer_id: Optional[int], target_id: int
    ) -> ProfileView:
        account = self.get_account(target_id)
        if account.disabled:
            raise NotFoundError(f"account {target_id} is deactivated")
        rel = self.relationship(viewer_id, target_id)
        return render_profile_view(self.policy, account, rel, self.clock.now_year)

    def _friend_list_visible(self, account: Account, rel: Relationship) -> bool:
        return self.policy.field_visible_to(
            account, ProfileField.FRIEND_LIST, rel, self.clock.now_year
        )

    # ------------------------------------------------------------------
    # Friend lists
    # ------------------------------------------------------------------
    def friend_page(
        self, viewer_id: Optional[int], target_id: int, offset: int = 0
    ) -> Tuple[int, List[DirectoryEntry]]:
        self._check_uid(target_id)
        account = self._light_account(target_id)
        rel = self.relationship(viewer_id, target_id)
        if not self._friend_list_visible(account, rel):
            raise ForbiddenError(f"friend list of {target_id} not visible")
        friend_ids = self._friend_ids(target_id)
        if not self.reverse_lookup_enabled:
            friend_ids = [
                fid
                for fid in friend_ids
                if self._visible_in_friend_lists(viewer_id, fid)
            ]
        total = len(friend_ids)
        page = friend_ids[offset : offset + self.friends_page_size]
        entries = [
            DirectoryEntry(fid, self._display_name(fid)) for fid in page
        ]
        return total, entries

    def _visible_in_friend_lists(
        self, viewer_id: Optional[int], member_id: int
    ) -> bool:
        if not self._has_uid(member_id):
            return False
        member = self._light_account(member_id)
        if member.disabled:
            return False
        rel = self.relationship(viewer_id, member_id)
        return self._friend_list_visible(member, rel)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _school_member_ids(self, school_id: int) -> List[int]:
        return self._school_members.get(school_id, [])

    def _search_pool(self, viewer_account_id: int, school_id: int) -> List[int]:
        """Identical formula to ``SocialNetwork._search_pool`` — the
        per-account truncated sample depends only on (viewer uid, school
        id, salt), so the same accounts see the same pools on both
        serving backends."""
        now = self.clock.now_year
        eligible = [
            uid
            for uid in self._school_member_ids(school_id)
            if self.policy.school_search_eligible(self._light_account(uid), now)
        ]
        if len(eligible) <= self.search_result_cap:
            return eligible
        rng = random.Random(
            (viewer_account_id * 1_000_003 + school_id) ^ self.search_salt
        )
        return sorted(rng.sample(eligible, self.search_result_cap))

    def school_search(
        self, viewer_account_id: int, school_id: int, offset: int = 0
    ) -> Tuple[int, List[DirectoryEntry]]:
        self.get_school(school_id)
        self._check_uid(viewer_account_id)
        pool = self._search_pool(viewer_account_id, school_id)
        page = pool[offset : offset + self.search_page_size]
        entries = [
            DirectoryEntry(uid, self._display_name(uid)) for uid in page
        ]
        return len(pool), entries

    def graph_search(
        self, viewer_account_id: int, query: GraphSearchQuery
    ) -> List[DirectoryEntry]:
        self._check_uid(viewer_account_id)
        if self.search_result_cap <= 0:
            return []
        now = self.clock.now_year
        current_year = self.clock.current_year
        results: List[DirectoryEntry] = []
        for uid in self._school_member_ids(query.school_id):
            account = self._light_account(uid)
            if not self.policy.school_search_eligible(account, now):
                continue
            affiliation = self._affiliation_for(uid, query.school_id)
            if affiliation is None:
                continue
            if query.current_students_only and not affiliation.is_current_student(
                current_year
            ):
                continue
            if query.year_op is not None:
                if affiliation.graduation_year is None or query.year is None:
                    continue
                grad = affiliation.graduation_year
                matches = {
                    "in": grad == query.year,
                    "after": grad > query.year,
                    "before": grad < query.year,
                }.get(query.year_op)
                if matches is None:
                    raise ValueError(f"bad year_op: {query.year_op!r}")
                if not matches:
                    continue
            if (
                query.current_city is not None
                and self._current_city(uid) != query.current_city
            ):
                continue
            results.append(DirectoryEntry(uid, self._display_name(uid)))
            if len(results) >= self.search_result_cap:
                break
        return results

    def _affiliation_for(
        self, user_id: int, school_id: int
    ) -> Optional[SchoolAffiliation]:
        world = self.world
        row = self._row(user_id)
        profiles = world.profiles
        if profiles is not None:
            lo = int(profiles.hs_indptr[row])
            hi = int(profiles.hs_indptr[row + 1])
            for i in range(lo, hi):
                if int(profiles.hs_school_id[i]) == school_id:
                    grad = int(profiles.hs_grad_year[i])
                    return SchoolAffiliation(
                        school_id=school_id,
                        school_name=world.profile_strings.lookup(
                            int(profiles.hs_name_id[i])
                        )
                        or "",
                        graduation_year=grad if grad >= 0 else None,
                    )
            return None
        pid = int(world.accounts.person_id[row])
        if pid < 0 or int(world.people.school_index[pid]) + 1 != school_id:
            return None
        school = self.schools.get(school_id)
        cohort = int(world.people.cohort_year[pid])
        return SchoolAffiliation(
            school_id=school_id,
            school_name=school.name if school is not None else "",
            graduation_year=cohort if cohort >= 0 else None,
        )

    def _current_city(self, user_id: int) -> Optional[str]:
        world = self.world
        row = self._row(user_id)
        profiles = world.profiles
        if profiles is not None:
            return world.profile_strings.lookup(
                int(profiles.current_city_id[row])
            )
        pid = int(world.accounts.person_id[row])
        if pid < 0:
            return None
        return world.cities.lookup(int(world.people.city_id[pid]))

    # ------------------------------------------------------------------
    # Directory
    # ------------------------------------------------------------------
    def get_school(self, school_id: int) -> School:
        try:
            return self.schools[school_id]
        except KeyError:
            raise NotFoundError(f"no such school: {school_id}") from None

    def find_school_by_name(self, name: str) -> Optional[School]:
        lowered = name.lower()
        for school in self.schools.values():
            if school.name.lower() == lowered:
                return school
        return None

    @property
    def current_year(self) -> int:
        return self.clock.current_year

    def is_registered_minor(self, user_id: int) -> bool:
        return self.policy.is_registered_minor(
            self._light_account(user_id), self.clock.now_year
        )

    # ------------------------------------------------------------------
    # Contact surfaces (POST-only; the one mutable service)
    # ------------------------------------------------------------------
    def can_message(self, sender_id: int, recipient_id: int) -> bool:
        self._check_uid(recipient_id)
        recipient = self._light_account(recipient_id)
        rel = self.relationship(sender_id, recipient_id)
        return self.policy.message_button_visible(
            recipient, rel, self.clock.now_year
        )

    def send_message(self, sender_id: int, recipient_id: int, text: str) -> Message:
        self._check_uid(sender_id)
        if not self.can_message(sender_id, recipient_id):
            raise ForbiddenError(
                f"user {sender_id} may not message user {recipient_id}"
            )
        message = Message(sender_id, recipient_id, text, self.clock.now_year)
        self.contact.deliver_message(message)
        return message

    def send_friend_request(self, sender_id: int, recipient_id: int) -> bool:
        self._check_uid(sender_id)
        self._check_uid(recipient_id)
        if self._are_friends(sender_id, recipient_id):
            return False
        return self.contact.add_request(
            FriendRequest(sender_id, recipient_id, self.clock.now_year)
        )


def columnar_frontend(
    world: ColumnarWorld,
    *,
    policy: Optional[SitePolicy] = None,
    reverse_lookup_enabled: bool = True,
    search_result_cap: int = 256,
    search_page_size: int = 20,
    friends_page_size: int = 20,
    search_salt: Optional[int] = None,
    rate_limit: Optional[RateLimitConfig] = None,
    telemetry: Optional["Telemetry"] = None,
    cache: Optional[RenderCache] = None,
) -> HtmlFrontend:
    """Stand up an :class:`HtmlFrontend` over a columnar world.

    Returns a frontend whose ``network`` is a :class:`ColumnarNetwork`;
    call ``frontend.network.add_session_accounts(n)`` to mint crawl
    accounts.  Pass the same policy/cap/rate-limit knobs the object
    world was built with to get byte-identical pages.
    """
    network = ColumnarNetwork(
        world,
        policy=policy,
        reverse_lookup_enabled=reverse_lookup_enabled,
        search_result_cap=search_result_cap,
        search_page_size=search_page_size,
        friends_page_size=friends_page_size,
        search_salt=search_salt,
    )
    return HtmlFrontend(
        network,  # type: ignore[arg-type]
        rate_limit,
        telemetry=telemetry,
        cache=cache,
    )


def frontend_for_object_world(
    world: "object",
    *,
    telemetry: Optional["Telemetry"] = None,
    cache: Optional[RenderCache] = None,
) -> HtmlFrontend:
    """Encode a built object :class:`~repro.worldgen.world.World` and
    serve it with *identical* knobs.

    Copies the policy, search/paging caps, salt and rate-limit config
    straight off ``world.config`` — the exact values ``build_world``
    wired into the object frontend — so the returned frontend's pages
    are byte-for-byte those of ``world.frontend``.  This is the
    drop-in used by ``--serve columnar`` on paper-tier presets.
    """
    from repro.osn.policy import policy_by_name

    from .encode import encode_world

    config = world.config  # type: ignore[attr-defined]
    columnar = encode_world(world)  # type: ignore[arg-type]
    return columnar_frontend(
        columnar,
        policy=policy_by_name(config.site),
        search_result_cap=config.osn.search_result_cap,
        search_page_size=config.osn.search_page_size,
        friends_page_size=config.osn.friends_page_size,
        search_salt=config.seed,
        rate_limit=RateLimitConfig(
            max_requests=config.osn.rate_limit_max_requests,
            window_seconds=config.osn.rate_limit_window_seconds,
        ),
        telemetry=telemetry,
        cache=cache,
    )


def session_accounts(frontend: HtmlFrontend, count: int) -> list:
    """Register ``count`` crawl accounts on a columnar-served frontend.

    The simulator-side door for callers that hold only the frontend:
    reaching through ``frontend.network`` from CLI/bench code would
    cross the oracle boundary the lint polices, so the one-line reach
    lives here, inside the simulator layer.
    """
    return frontend.network.add_session_accounts(count)


def first_school_id(frontend: HtmlFrontend) -> int:
    """The lowest school id a columnar-served frontend knows about.

    Native tiers have no object ``World`` to ask; this is the
    simulator-side equivalent of ``world.school().school_id``.
    """
    return min(frontend.network.schools)
