"""Encode a legacy object :class:`~repro.worldgen.world.World` into columns.

This is the bridge between the two generations of worldgen: the
``smoke``/``paper`` tiers run the fully-calibrated object generator
(every behavioural knob of the paper intact), then *encode* the result
into the columnar layout.  Because encoding is a pure re-representation
— no RNG draws, no reordering — the lazy views decode back to objects
that compare equal field-for-field, which is exactly what the
equivalence suite asserts.  The native vectorised path
(:mod:`repro.colgen.generate`) takes over at ``city`` scale, where the
object generator cannot go.
"""

from __future__ import annotations

from typing import List

from repro.worldgen.world import World

from .backend import float_column, int_column
from .columns import (
    AccountColumns,
    ColumnarWorld,
    PeopleColumns,
    ProfileColumns,
    StringTable,
    pack_privacy,
)
from .csr import CSRGraph
from .views import GENDER_TO_ORDINAL, ROLE_TO_ORDINAL


def _encode_profiles(accounts: List, strings: StringTable) -> ProfileColumns:
    """Column-pack every account's Profile (row order == uid order)."""
    intern = strings.intern
    first_name_id: List[int] = []
    last_name_id: List[int] = []
    gender: List[int] = []
    has_profile_photo: List[int] = []
    has_birthday: List[int] = []
    birthday_year: List[int] = []
    birthday_fraction: List[float] = []
    relationship_id: List[int] = []
    interested_in_id: List[int] = []
    hometown_id: List[int] = []
    current_city_id: List[int] = []
    employer_id: List[int] = []
    graduate_school_id: List[int] = []
    photo_count: List[int] = []
    has_contact: List[int] = []
    contact_email_id: List[int] = []
    contact_phone_id: List[int] = []
    contact_im_id: List[int] = []
    contact_street_id: List[int] = []
    networks_indptr: List[int] = [0]
    network_id: List[int] = []
    hs_indptr: List[int] = [0]
    hs_school_id: List[int] = []
    hs_name_id: List[int] = []
    hs_grad_year: List[int] = []
    wall_indptr: List[int] = [0]
    wall_author: List[int] = []
    wall_text_id: List[int] = []
    for account in accounts:
        profile = account.profile
        first_name_id.append(intern(profile.name.first))
        last_name_id.append(intern(profile.name.last))
        gender.append(GENDER_TO_ORDINAL[profile.gender])
        has_profile_photo.append(int(profile.has_profile_photo))
        birthday = profile.birthday
        has_birthday.append(int(birthday is not None))
        birthday_year.append(-1 if birthday is None else birthday.year)
        birthday_fraction.append(0.0 if birthday is None else birthday.fraction)
        relationship_id.append(intern(profile.relationship_status))
        interested_in_id.append(intern(profile.interested_in))
        hometown_id.append(intern(profile.hometown))
        current_city_id.append(intern(profile.current_city))
        employer_id.append(intern(profile.employer))
        graduate_school_id.append(intern(profile.graduate_school))
        photo_count.append(profile.photo_count)
        contact = profile.contact_info
        has_contact.append(int(contact is not None))
        contact_email_id.append(intern(contact.email if contact else None))
        contact_phone_id.append(intern(contact.phone if contact else None))
        contact_im_id.append(
            intern(contact.im_screen_name if contact else None)
        )
        contact_street_id.append(
            intern(contact.street_address if contact else None)
        )
        for net in profile.networks:
            network_id.append(intern(net))
        networks_indptr.append(len(network_id))
        for aff in profile.high_schools:
            hs_school_id.append(aff.school_id)
            hs_name_id.append(intern(aff.school_name))
            hs_grad_year.append(
                -1 if aff.graduation_year is None else aff.graduation_year
            )
        hs_indptr.append(len(hs_school_id))
        for post in profile.wall_posts:
            wall_author.append(post.author_id)
            wall_text_id.append(intern(post.text))
        wall_indptr.append(len(wall_author))
    return ProfileColumns(
        first_name_id=int_column(first_name_id, dtype="i4"),
        last_name_id=int_column(last_name_id, dtype="i4"),
        gender=int_column(gender, dtype="i1"),
        has_profile_photo=int_column(has_profile_photo, dtype="i1"),
        has_birthday=int_column(has_birthday, dtype="i1"),
        birthday_year=int_column(birthday_year, dtype="i4"),
        birthday_fraction=float_column(birthday_fraction),
        relationship_id=int_column(relationship_id, dtype="i4"),
        interested_in_id=int_column(interested_in_id, dtype="i4"),
        hometown_id=int_column(hometown_id, dtype="i4"),
        current_city_id=int_column(current_city_id, dtype="i4"),
        employer_id=int_column(employer_id, dtype="i4"),
        graduate_school_id=int_column(graduate_school_id, dtype="i4"),
        photo_count=int_column(photo_count, dtype="i4"),
        has_contact=int_column(has_contact, dtype="i1"),
        contact_email_id=int_column(contact_email_id, dtype="i4"),
        contact_phone_id=int_column(contact_phone_id, dtype="i4"),
        contact_im_id=int_column(contact_im_id, dtype="i4"),
        contact_street_id=int_column(contact_street_id, dtype="i4"),
        networks_indptr=int_column(networks_indptr, dtype="i8"),
        network_id=int_column(network_id, dtype="i4"),
        hs_indptr=int_column(hs_indptr, dtype="i8"),
        hs_school_id=int_column(hs_school_id, dtype="i4"),
        hs_name_id=int_column(hs_name_id, dtype="i4"),
        hs_grad_year=int_column(hs_grad_year, dtype="i4"),
        wall_indptr=int_column(wall_indptr, dtype="i8"),
        wall_author=int_column(wall_author, dtype="i8"),
        wall_text_id=int_column(wall_text_id, dtype="i4"),
    )


def encode_world(world: World, tier: str = "paper") -> ColumnarWorld:
    """Losslessly re-represent a built world as columns + CSR."""
    names = StringTable()
    cities = StringTable()
    streets = StringTable()

    people = world.population.people
    people_cols = PeopleColumns(
        birth_year_fraction=float_column(p.birth_year_fraction for p in people),
        role=int_column((ROLE_TO_ORDINAL[p.role] for p in people), dtype="i1"),
        gender=int_column((GENDER_TO_ORDINAL[p.gender] for p in people), dtype="i1"),
        school_index=int_column(
            (-1 if p.school_index is None else p.school_index for p in people),
            dtype="i2",
        ),
        cohort_year=int_column(
            (-1 if p.cohort_year is None else p.cohort_year for p in people),
            dtype="i4",
        ),
        tenure_years=float_column(p.tenure_years for p in people),
        left_years_ago=float_column(p.left_years_ago for p in people),
        household_id=int_column(
            (-1 if p.household_id is None else p.household_id for p in people),
            dtype="i8",
        ),
        first_name_id=int_column(
            (names.intern(p.name.first) for p in people), dtype="i4"
        ),
        last_name_id=int_column(
            (names.intern(p.name.last) for p in people), dtype="i4"
        ),
        city_id=int_column((cities.intern(p.city) for p in people), dtype="i4"),
        street_id=int_column(
            (streets.intern(p.street_address) for p in people), dtype="i4"
        ),
    )

    n_users = len(world.network.users)
    uids = sorted(world.network.users)
    uid_base = uids[0] if uids else 0
    if uids != list(range(uid_base, uid_base + n_users)):
        raise ValueError("expected contiguous user ids from worldgen")
    accounts = [world.network.users[uid] for uid in uids]
    account_cols = AccountColumns(
        person_id=int_column(
            (-1 if a.person_id is None else a.person_id for a in accounts),
            dtype="i8",
        ),
        registered_birth_year=int_column(
            (a.registered_birthday.year for a in accounts), dtype="i4"
        ),
        registered_birth_fraction=float_column(
            a.registered_birthday.fraction for a in accounts
        ),
        real_birth_year=int_column(
            (a.real_birthday.year for a in accounts), dtype="i4"
        ),
        real_birth_fraction=float_column(
            a.real_birthday.fraction for a in accounts
        ),
        created_at_year=float_column(a.created_at_year for a in accounts),
        is_fake=int_column((int(a.is_fake) for a in accounts), dtype="i1"),
        privacy=int_column((pack_privacy(a.settings) for a in accounts), dtype="u8"),
    )

    # neighbors_list is already sorted; shifting every id by the same
    # base preserves that order, so CSR rows inherit it directly.
    csr = CSRGraph.from_sorted_rows(
        [n - uid_base for n in world.network.graph.neighbors_list(uid)]
        for uid in uids
    )

    profile_strings = StringTable()
    profile_cols = _encode_profiles(accounts, profile_strings)

    columnar = ColumnarWorld(
        tier=tier,
        seed=world.config.seed,
        observation_year=world.config.observation_year,
        people=people_cols,
        accounts=account_cols,
        csr=csr,
        uid_base=uid_base,
        names=names,
        cities=cities,
        streets=streets,
        schools=[(s.name, s.city) for s in world.schools],
        person_to_user=dict(world.account_index.person_to_user),
        profiles=profile_cols,
        profile_strings=profile_strings,
        # the network's directory includes the noise schools that
        # ``schools`` (config schools only) leaves out — the serve path
        # needs all of them.
        directory=[
            (s.school_id, s.name, s.city, s.enrollment_hint)
            for s in world.network.schools.values()
        ],
    )
    columnar.stats["accounts"] = float(n_users)
    columnar.stats["edges"] = float(csr.edge_count())
    columnar.stats["profile_bytes"] = float(profile_cols.nbytes)
    return columnar
