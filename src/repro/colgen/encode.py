"""Encode a legacy object :class:`~repro.worldgen.world.World` into columns.

This is the bridge between the two generations of worldgen: the
``smoke``/``paper`` tiers run the fully-calibrated object generator
(every behavioural knob of the paper intact), then *encode* the result
into the columnar layout.  Because encoding is a pure re-representation
— no RNG draws, no reordering — the lazy views decode back to objects
that compare equal field-for-field, which is exactly what the
equivalence suite asserts.  The native vectorised path
(:mod:`repro.colgen.generate`) takes over at ``city`` scale, where the
object generator cannot go.
"""

from __future__ import annotations

from typing import List

from repro.worldgen.world import World

from .backend import float_column, int_column
from .columns import (
    AccountColumns,
    ColumnarWorld,
    PeopleColumns,
    StringTable,
    pack_privacy,
)
from .csr import CSRGraph
from .views import GENDER_TO_ORDINAL, ROLE_TO_ORDINAL


def encode_world(world: World, tier: str = "paper") -> ColumnarWorld:
    """Losslessly re-represent a built world as columns + CSR."""
    names = StringTable()
    cities = StringTable()
    streets = StringTable()

    people = world.population.people
    people_cols = PeopleColumns(
        birth_year_fraction=float_column(p.birth_year_fraction for p in people),
        role=int_column((ROLE_TO_ORDINAL[p.role] for p in people), dtype="i1"),
        gender=int_column((GENDER_TO_ORDINAL[p.gender] for p in people), dtype="i1"),
        school_index=int_column(
            (-1 if p.school_index is None else p.school_index for p in people),
            dtype="i2",
        ),
        cohort_year=int_column(
            (-1 if p.cohort_year is None else p.cohort_year for p in people),
            dtype="i4",
        ),
        tenure_years=float_column(p.tenure_years for p in people),
        left_years_ago=float_column(p.left_years_ago for p in people),
        household_id=int_column(
            (-1 if p.household_id is None else p.household_id for p in people),
            dtype="i8",
        ),
        first_name_id=int_column(
            (names.intern(p.name.first) for p in people), dtype="i4"
        ),
        last_name_id=int_column(
            (names.intern(p.name.last) for p in people), dtype="i4"
        ),
        city_id=int_column((cities.intern(p.city) for p in people), dtype="i4"),
        street_id=int_column(
            (streets.intern(p.street_address) for p in people), dtype="i4"
        ),
    )

    n_users = len(world.network.users)
    uids = sorted(world.network.users)
    uid_base = uids[0] if uids else 0
    if uids != list(range(uid_base, uid_base + n_users)):
        raise ValueError("expected contiguous user ids from worldgen")
    accounts = [world.network.users[uid] for uid in uids]
    account_cols = AccountColumns(
        person_id=int_column(
            (-1 if a.person_id is None else a.person_id for a in accounts),
            dtype="i8",
        ),
        registered_birth_year=int_column(
            (a.registered_birthday.year for a in accounts), dtype="i4"
        ),
        registered_birth_fraction=float_column(
            a.registered_birthday.fraction for a in accounts
        ),
        real_birth_year=int_column(
            (a.real_birthday.year for a in accounts), dtype="i4"
        ),
        real_birth_fraction=float_column(
            a.real_birthday.fraction for a in accounts
        ),
        created_at_year=float_column(a.created_at_year for a in accounts),
        is_fake=int_column((int(a.is_fake) for a in accounts), dtype="i1"),
        privacy=int_column((pack_privacy(a.settings) for a in accounts), dtype="u8"),
    )

    # neighbors_list is already sorted; shifting every id by the same
    # base preserves that order, so CSR rows inherit it directly.
    csr = CSRGraph.from_sorted_rows(
        [n - uid_base for n in world.network.graph.neighbors_list(uid)]
        for uid in uids
    )

    columnar = ColumnarWorld(
        tier=tier,
        seed=world.config.seed,
        observation_year=world.config.observation_year,
        people=people_cols,
        accounts=account_cols,
        csr=csr,
        uid_base=uid_base,
        names=names,
        cities=cities,
        streets=streets,
        schools=[(s.name, s.city) for s in world.schools],
        person_to_user=dict(world.account_index.person_to_user),
    )
    columnar.stats["accounts"] = float(n_users)
    columnar.stats["edges"] = float(csr.edge_count())
    return columnar
