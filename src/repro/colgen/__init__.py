"""repro.colgen — columnar, tiered, memory-bounded world generation.

The scale subsystem: people, accounts, privacy words and birth dates
live in parallel typed columns keyed by integer id; friendships are a
CSR adjacency; generation shards deterministically from one seed.  Size
tiers run from ``smoke`` (unit tests) through ``paper`` (the published
calibration) to ``city``/``metro`` (10^6–10^7 accounts).

Entry points:

* :func:`generate` — build a tier (``generate("city", seed=1)``).
* :func:`encode_world` — losslessly columnarise a legacy object world.
* :func:`bench_worldgen` — run a tier under measurement, for
  ``BENCH_worldgen.json``.
* CLI: ``python -m repro worldgen --tier city``.
"""

from .backend import ColgenDependencyError, HAS_NUMPY
from .bench import bench_worldgen, peak_rss_bytes, write_bench_json
from .columns import (
    AccountColumns,
    ColumnarWorld,
    PeopleColumns,
    PRIVACY_FIELD_ORDER,
    ProfileColumns,
    StringTable,
    decode_profile,
    pack_privacy,
    unpack_privacy,
)
from .csr import CSRGraph
from .encode import encode_world
from .generate import generate
from .serve import (
    ColumnarNetwork,
    columnar_frontend,
    first_school_id,
    frontend_for_object_world,
    session_accounts,
)
from .tiers import TIER_NAMES, TIERS, TierSpec, tier
from .views import PopulationView, person_view

__all__ = [
    "AccountColumns",
    "CSRGraph",
    "ColgenDependencyError",
    "ColumnarNetwork",
    "ColumnarWorld",
    "HAS_NUMPY",
    "PRIVACY_FIELD_ORDER",
    "PeopleColumns",
    "PopulationView",
    "ProfileColumns",
    "StringTable",
    "columnar_frontend",
    "decode_profile",
    "TIERS",
    "TIER_NAMES",
    "TierSpec",
    "bench_worldgen",
    "encode_world",
    "first_school_id",
    "frontend_for_object_world",
    "session_accounts",
    "generate",
    "pack_privacy",
    "peak_rss_bytes",
    "person_view",
    "tier",
    "unpack_privacy",
    "write_bench_json",
]
