"""CSR adjacency: the friendship graph as two flat arrays.

``FriendGraph`` (dict of sets) costs ~200 bytes per edge endpoint in
CPython — a hard ceiling around a few hundred thousand users.  The CSR
layout here stores the same undirected graph as

* ``indptr``  — ``n + 1`` monotone offsets (int64), and
* ``indices`` — every neighbour of node ``u`` in the half-open slice
  ``indices[indptr[u]:indptr[u + 1]]``, **sorted ascending**,

which is 4–8 bytes per endpoint and answers the queries the attack
pipeline actually issues (neighbour lists, degrees, membership, mutual
counts) with contiguous scans and binary search.  Rows being sorted is a
class invariant: construction sorts and deduplicates, ``validate()``
re-checks it, and ``are_friends`` relies on it.

The structure is immutable by design — worldgen produces the final
graph; mid-crawl mutation stays on the legacy object path.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from .backend import (
    HAS_NUMPY,
    FloatBuffer,
    IntBuffer,
    buffer_nbytes,
    cumulative_sum,
    int_column,
    np,
)


class CSRGraph:
    """An immutable undirected graph over dense integer ids ``0..n-1``."""

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: IntBuffer, indices: IntBuffer) -> None:
        self.indptr = indptr
        self.indices = indices

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int]]) -> "CSRGraph":
        """Build from undirected edge pairs (either orientation, dups ok).

        Pure-python path: fine up to paper scale.  The streaming builder
        in :mod:`repro.colgen.generate` covers million-node worlds.
        """
        adjacency: List[List[int]] = [[] for _ in range(n)]
        for a, b in edges:
            if a == b:
                continue
            adjacency[a].append(b)
            adjacency[b].append(a)
        return cls.from_sorted_rows(
            sorted(set(row)) for row in adjacency
        )

    @classmethod
    def from_sorted_rows(cls, rows: Iterable[Sequence[int]]) -> "CSRGraph":
        """Build from per-node neighbour lists already sorted ascending."""
        counts: List[int] = []
        flat: List[int] = []
        for row in rows:
            counts.append(len(row))
            flat.extend(row)
        return cls(cumulative_sum(counts), int_column(flat, dtype="i8"))

    @classmethod
    def from_directed_arrays(cls, n: int, src, dst) -> "CSRGraph":
        """Vectorised build from directed endpoint arrays (numpy only).

        ``src``/``dst`` must already contain both orientations of every
        undirected edge.  Rows are sorted and deduplicated here, so the
        caller may stream duplicates in freely.
        """
        if not HAS_NUMPY:  # pragma: no cover - guarded by callers
            raise RuntimeError("from_directed_arrays needs numpy")
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        # One global argsort on the composite key (row, col) sorts every
        # row at once; consecutive-equal keys are duplicate edges.
        key = src * np.int64(n) + dst
        order = np.argsort(key, kind="stable")
        key = key[order]
        unique = np.ones(key.shape[0], dtype=bool)
        if key.shape[0] > 1:
            unique[1:] = key[1:] != key[:-1]
        src = src[order][unique]
        indices = dst[order][unique]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return cls(indptr, indices.astype(np.int64, copy=False))

    # ------------------------------------------------------------------
    # Queries (FriendGraph-compatible vocabulary)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.indptr) - 1

    def __contains__(self, user_id: int) -> bool:
        return 0 <= user_id < len(self)

    def degree(self, user_id: int) -> int:
        return int(self.indptr[user_id + 1] - self.indptr[user_id])

    def neighbors_list(self, user_id: int) -> List[int]:
        """Neighbours sorted ascending (the row is stored that way)."""
        lo, hi = int(self.indptr[user_id]), int(self.indptr[user_id + 1])
        return [int(v) for v in self.indices[lo:hi]]

    def neighbors(self, user_id: int) -> Set[int]:
        return set(self.neighbors_list(user_id))

    def are_friends(self, a: int, b: int) -> bool:
        lo, hi = int(self.indptr[a]), int(self.indptr[a + 1])
        if HAS_NUMPY and isinstance(self.indices, np.ndarray):
            row = self.indices[lo:hi]
            pos = int(np.searchsorted(row, b))
            return pos < row.shape[0] and int(row[pos]) == b
        pos = bisect_left(self.indices, b, lo, hi)
        return pos < hi and self.indices[pos] == b

    def mutual_friend_count(self, a: int, b: int) -> int:
        """Sorted-merge intersection size of two rows (no allocation)."""
        ia, ea = int(self.indptr[a]), int(self.indptr[a + 1])
        ib, eb = int(self.indptr[b]), int(self.indptr[b + 1])
        idx = self.indices
        count = 0
        while ia < ea and ib < eb:
            va, vb = idx[ia], idx[ib]
            if va == vb:
                count += 1
                ia += 1
                ib += 1
            elif va < vb:
                ia += 1
            else:
                ib += 1
        return count

    def mutual_friends(self, a: int, b: int) -> Set[int]:
        return self.neighbors(a) & self.neighbors(b)

    def edge_count(self) -> int:
        return len(self.indices) // 2

    def mean_degree(self) -> float:
        n = len(self)
        return (len(self.indices) / n) if n else 0.0

    def degree_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for u in range(len(self)):
            d = self.degree(u)
            hist[d] = hist.get(d, 0) + 1
        return hist

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Each undirected edge once, as (low id, high id)."""
        for u in range(len(self)):
            for v in self.neighbors_list(u):
                if u < v:
                    yield (u, v)

    def subgraph_degree(self, user_id: int, within: Set[int]) -> int:
        return sum(1 for f in self.neighbors_list(user_id) if f in within)

    @property
    def nbytes(self) -> int:
        return buffer_nbytes(self.indptr) + buffer_nbytes(self.indices)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the class invariants; raises ``ValueError`` on breakage.

        Sorted rows, no self-loops, no duplicates, symmetric adjacency,
        and an ``indptr`` that is monotone and spans ``indices`` exactly.
        O(E log d) — meant for tests and post-build checks, not hot paths.
        """
        n = len(self)
        if int(self.indptr[0]) != 0 or int(self.indptr[n]) != len(self.indices):
            raise ValueError("indptr does not span indices")
        for u in range(n):
            lo, hi = int(self.indptr[u]), int(self.indptr[u + 1])
            if lo > hi:
                raise ValueError(f"indptr not monotone at node {u}")
            prev = -1
            for i in range(lo, hi):
                v = int(self.indices[i])
                if v == u:
                    raise ValueError(f"self-loop at node {u}")
                if v <= prev:
                    raise ValueError(f"row {u} not sorted/deduplicated")
                if not 0 <= v < n:
                    raise ValueError(f"row {u} references out-of-range node {v}")
                prev = v
        for u in range(n):
            for v in self.neighbors_list(u):
                if not self.are_friends(v, u):
                    raise ValueError(f"asymmetric edge {u}->{v}")
