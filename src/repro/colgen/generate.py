"""Native columnar generation: sharded, vectorised, memory-bounded.

The large tiers (``city``, ``metro``) cannot run the object generator —
a million ``Person``/``Account``/``dict-of-sets`` instances is gigabytes
of pointer soup before a single edge exists.  This module generates the
same *columnar schema* directly:

* The city is a grid of **blocks** (neighbourhood + one school each).
  Blocks are the sharding unit: every demographic column and every edge
  batch for block ``b`` is drawn from its own generator, seeded as
  ``SeedSequence([seed, stream, b])``.  One world seed therefore fans
  out into per-shard streams deterministically (DET001: no module-level
  RNG, every generator is constructed from an explicit seed), and any
  shard can be regenerated independently — which is exactly what the
  two-pass graph build exploits.

* The friendship graph is built **streaming**: pass one regenerates each
  block's edge batch only to count degrees, pass two regenerates the
  identical batches and scatters endpoints straight into the final CSR
  ``indices`` buffer.  No edge list for the whole world is ever held;
  peak memory is the final CSR plus one composite sort key, which is
  what keeps a 1M-account build in the low hundreds of MB.

* Demography is a deliberately simplified projection of the paper's
  model — a school-age slice with the COPPA lying mix, adult privacy
  defaults vs. minor caps, friend-list/public-search/message rates —
  calibrated for *shape*, not for the per-table numbers (those live on
  the ``smoke``/``paper`` tiers, which keep the full object generator).
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.worldgen.presets import preset

from .backend import require_numpy, np
from .columns import (
    AccountColumns,
    ColumnarWorld,
    PeopleColumns,
    PRIVACY_MESSAGE_SHIFT,
    PRIVACY_SEARCH_SHIFT,
    StringTable,
    audience_shift,
    pack_privacy,
)
from .csr import CSRGraph
from .encode import encode_world
from .tiers import TierSpec, tier as tier_by_name
from .views import GENDER_TO_ORDINAL, ROLE_TO_ORDINAL

# Distinct RNG stream tags so column draws and edge draws of the same
# shard never reuse a bit stream.
_STREAM_COLUMNS = 11
_STREAM_EDGES = 23

# --- native demographic mix (fractions of a block) --------------------
_P_STUDENT = 0.035
_P_FORMER = 0.005
_P_ALUMNUS = 0.07
_P_PARENT = 0.02
_P_CITY_ADULT = 0.10
# remainder: external pool

# --- COPPA lying mix (LyingConfig defaults, vectorised) ---------------
_P_LIE_IF_UNDER_13 = 0.80
_CLAIM_WEIGHTS = (0.40, 0.12, 0.48)  # exactly 13 / mid-teen / adult
_OBSERVATION_YEAR = 2012.25

# --- privacy behaviour (StudentBehaviorConfig-flavoured rates) --------
_P_FRIEND_LIST_PUBLIC = 0.75
_P_PUBLIC_SEARCH = 0.80
_P_MESSAGE_PUBLIC = 0.85
_P_BIRTHDAY_PUBLIC = 0.05


def generate(
    tier_name: str,
    seed: int = 1,
    *,
    school: str = "hs1",
    blocks: Optional[int] = None,
) -> ColumnarWorld:
    """Generate a columnar world for a named tier.

    ``smoke``/``paper`` run the calibrated object generator and encode;
    ``city``/``metro`` run the native sharded path (numpy required).
    ``blocks`` overrides the native shard count — tests use it to run
    the full city machinery at a few thousand accounts.
    """
    spec = tier_by_name(tier_name)
    if spec.kind == "preset":
        return _generate_from_preset(spec, seed, school)
    if blocks is not None:
        spec = spec.with_blocks(blocks)
    return _generate_native(spec, seed)


def _generate_from_preset(spec: TierSpec, seed: int, school: str) -> ColumnarWorld:
    from repro.worldgen.world import build_world  # local: keeps import light

    config = preset(spec.preset or school, seed)
    t0 = time.perf_counter()
    world = build_world(config)
    t1 = time.perf_counter()
    columnar = encode_world(world, tier=spec.name)
    t2 = time.perf_counter()
    columnar.stats["build_seconds"] = t1 - t0
    columnar.stats["encode_seconds"] = t2 - t1
    columnar.stats["graph_seconds"] = 0.0  # folded into the object build
    columnar.stats["wall_seconds"] = t2 - t0
    return columnar


# ----------------------------------------------------------------------
# Native path
# ----------------------------------------------------------------------

def _shard_rng(seed: int, stream: int, shard: int) -> "np.random.Generator":
    """The deterministic per-shard generator (explicit seed material)."""
    return np.random.default_rng(np.random.SeedSequence([seed, stream, shard]))


def _generate_native(spec: TierSpec, seed: int) -> ColumnarWorld:
    require_numpy(f"tier {spec.name!r} (native columnar generation)")
    n = spec.blocks * spec.block_size
    t0 = time.perf_counter()
    world = _generate_columns(spec, seed, n)
    t1 = time.perf_counter()
    world.stats["columns_seconds"] = t1 - t0
    if spec.materialize_graph:
        world.csr = _build_graph(spec, seed, n)
        world.stats["edges"] = float(world.csr.edge_count())
    t2 = time.perf_counter()
    world.stats["graph_seconds"] = t2 - t1
    world.stats["wall_seconds"] = t2 - t0
    world.stats["accounts"] = float(n)
    return world


def _generate_columns(spec: TierSpec, seed: int, n: int) -> ColumnarWorld:
    from repro.osn.privacy import PrivacySettings, ProfileField
    from repro.worldgen.names import FEMALE_FIRST, LAST_NAMES, MALE_FIRST
    from repro.worldgen.population import Role
    from repro.osn.profile import Gender

    names = StringTable()
    female_ids = np.asarray([names.intern(v) for v in FEMALE_FIRST], dtype=np.int32)
    male_ids = np.asarray([names.intern(v) for v in MALE_FIRST], dtype=np.int32)
    last_ids = np.asarray([names.intern(v) for v in LAST_NAMES], dtype=np.int32)

    cities = StringTable()
    schools = []
    district_city = np.empty(spec.blocks, dtype=np.int32)
    for b in range(spec.blocks):
        city = f"District {b}"
        district_city[b] = cities.intern(city)
        schools.append((f"District {b} High School", city))

    role_codes = {
        role: ROLE_TO_ORDINAL[role]
        for role in (
            Role.STUDENT,
            Role.FORMER_STUDENT,
            Role.ALUMNUS,
            Role.PARENT,
            Role.CITY_ADULT,
            Role.EXTERNAL,
        )
    }
    gender_female = GENDER_TO_ORDINAL[Gender.FEMALE]
    gender_male = GENDER_TO_ORDINAL[Gender.MALE]

    # Preallocate every column once; shards fill disjoint slices.
    birth = np.empty(n, dtype=np.float64)
    role = np.empty(n, dtype=np.int8)
    gender = np.empty(n, dtype=np.int8)
    school_index = np.empty(n, dtype=np.int16)
    cohort_year = np.empty(n, dtype=np.int32)
    tenure = np.zeros(n, dtype=np.float32)
    left_ago = np.zeros(n, dtype=np.float32)
    household = np.full(n, -1, dtype=np.int32)
    first_name = np.empty(n, dtype=np.int32)
    last_name = np.empty(n, dtype=np.int32)
    city_col = np.empty(n, dtype=np.int32)
    street = np.full(n, -1, dtype=np.int32)

    reg_year = np.empty(n, dtype=np.int32)
    reg_frac = np.empty(n, dtype=np.float32)
    real_year = np.empty(n, dtype=np.int32)
    real_frac = np.empty(n, dtype=np.float32)
    created = np.empty(n, dtype=np.float32)
    privacy = np.empty(n, dtype=np.uint64)

    # Base privacy words; the per-account bernoullis below edit bits.
    adult_word = np.uint64(pack_privacy(PrivacySettings.facebook_adult_default_2012()))
    minor_word = np.uint64(pack_privacy(PrivacySettings.facebook_minor_default_2012()))
    fl_shift = np.uint64(audience_shift(ProfileField.FRIEND_LIST))
    bd_shift = np.uint64(audience_shift(ProfileField.BIRTHDAY))
    fl_clear = np.uint64(~(0b11 << int(fl_shift)) & (2**64 - 1))
    bd_clear = np.uint64(~(0b11 << int(bd_shift)) & (2**64 - 1))
    search_bit = np.uint64(1 << PRIVACY_SEARCH_SHIFT)
    msg_clear = np.uint64(~(0b11 << PRIVACY_MESSAGE_SHIFT) & (2**64 - 1))

    role_thresholds = np.cumsum(
        [_P_STUDENT, _P_FORMER, _P_ALUMNUS, _P_PARENT, _P_CITY_ADULT]
    )
    role_values = np.asarray(
        [
            role_codes[Role.STUDENT],
            role_codes[Role.FORMER_STUDENT],
            role_codes[Role.ALUMNUS],
            role_codes[Role.PARENT],
            role_codes[Role.CITY_ADULT],
            role_codes[Role.EXTERNAL],
        ],
        dtype=np.int8,
    )

    for b in range(spec.blocks):
        rng = _shard_rng(seed, _STREAM_COLUMNS, b)
        lo, hi = b * spec.block_size, (b + 1) * spec.block_size
        size = hi - lo

        roll = rng.random(size)
        bucket = np.searchsorted(role_thresholds, roll)
        role[lo:hi] = role_values[bucket]
        is_student = bucket == 0
        is_school = bucket <= 2  # student / former / alumnus
        is_minor_age = is_student | (bucket == 1)

        g = rng.random(size) < 0.5
        gender[lo:hi] = np.where(g, gender_female, gender_male)
        first_name[lo:hi] = np.where(
            g,
            female_ids[rng.integers(0, female_ids.size, size)],
            male_ids[rng.integers(0, male_ids.size, size)],
        )
        last_name[lo:hi] = last_ids[rng.integers(0, last_ids.size, size)]
        city_col[lo:hi] = district_city[b]
        school_index[lo:hi] = np.where(is_school, b, -1).astype(np.int16)

        # Ages: school-age for students/former, young-adult for alumni,
        # broad adult otherwise.
        age = np.where(
            is_minor_age,
            rng.uniform(13.5, 18.5, size),
            np.where(
                bucket == 2,
                rng.uniform(19.0, 28.0, size),
                rng.uniform(18.0, 60.0, size),
            ),
        )
        birth[lo:hi] = _OBSERVATION_YEAR - age

        grad_span = np.where(is_student, rng.integers(0, 4, size), 0)
        cohort_year[lo:hi] = np.where(
            is_school,
            2012 + grad_span - np.where(bucket == 2, rng.integers(1, 9, size), 0),
            -1,
        )
        tenure[lo:hi] = np.where(is_student, rng.uniform(0.5, 4.0, size), 0.0)

        # COPPA lying: minors who joined before 13 mostly lied upward.
        join_year = np.maximum(birth[lo:hi] + rng.uniform(10.5, 13.5, size), 2006.0)
        join_year = np.minimum(join_year, _OBSERVATION_YEAR - 0.05)
        under_13 = (join_year - birth[lo:hi]) < 13.0
        lies = under_13 & (rng.random(size) < _P_LIE_IF_UNDER_13)
        claim_roll = rng.random(size)
        claimed_age = np.where(
            claim_roll < _CLAIM_WEIGHTS[0],
            13.0 + rng.uniform(0.0, 0.5, size),
            np.where(
                claim_roll < _CLAIM_WEIGHTS[0] + _CLAIM_WEIGHTS[1],
                rng.uniform(14.0, 17.0, size),
                rng.uniform(18.0, 22.0, size),
            ),
        )
        registered_birth = np.where(lies, join_year - claimed_age, birth[lo:hi])
        reg_year[lo:hi] = registered_birth.astype(np.int32)
        reg_frac[lo:hi] = registered_birth - np.floor(registered_birth)
        real_year[lo:hi] = birth[lo:hi].astype(np.int32)
        real_frac[lo:hi] = birth[lo:hi] - np.floor(birth[lo:hi])
        created[lo:hi] = join_year

        # Privacy: the OSN keys everything off the *registered* age.
        registered_adult = (_OBSERVATION_YEAR - registered_birth) >= 18.0
        word = np.where(registered_adult, adult_word, minor_word)
        fl_public = rng.random(size) < _P_FRIEND_LIST_PUBLIC
        word = np.where(
            registered_adult & ~fl_public,
            (word & fl_clear) | np.uint64(1 << int(fl_shift)),  # FRIENDS
            word,
        )
        bd_public = rng.random(size) < _P_BIRTHDAY_PUBLIC
        word = np.where(
            registered_adult & bd_public,
            (word & bd_clear) | np.uint64(0b11 << int(bd_shift)),  # PUBLIC
            word,
        )
        searchable = rng.random(size) < _P_PUBLIC_SEARCH
        word = np.where(
            registered_adult & ~searchable, word & ~search_bit, word
        )
        msg_public = rng.random(size) < _P_MESSAGE_PUBLIC
        word = np.where(
            registered_adult & ~msg_public,
            (word & msg_clear) | np.uint64(1 << PRIVACY_MESSAGE_SHIFT),  # FRIENDS
            word,
        )
        privacy[lo:hi] = word

    people = PeopleColumns(
        birth_year_fraction=birth,
        role=role,
        gender=gender,
        school_index=school_index,
        cohort_year=cohort_year,
        tenure_years=tenure,
        left_years_ago=left_ago,
        household_id=household,
        first_name_id=first_name,
        last_name_id=last_name,
        city_id=city_col,
        street_id=street,
    )
    accounts = AccountColumns(
        person_id=np.arange(n, dtype=np.int64),  # identity: row i <-> uid i
        registered_birth_year=reg_year,
        registered_birth_fraction=reg_frac,
        real_birth_year=real_year,
        real_birth_fraction=real_frac,
        created_at_year=created,
        is_fake=np.zeros(n, dtype=np.int8),
        privacy=privacy,
    )
    return ColumnarWorld(
        tier=spec.name,
        seed=seed,
        observation_year=_OBSERVATION_YEAR,
        people=people,
        accounts=accounts,
        csr=None,
        names=names,
        cities=cities,
        streets=StringTable(),
        schools=schools,
        identity_mapping=True,
    )


# ----------------------------------------------------------------------
# Streaming two-pass CSR build
# ----------------------------------------------------------------------

def _shard_edge_batch(
    spec: TierSpec, seed: int, shard: int, n: int
) -> Tuple["np.ndarray", "np.ndarray"]:
    """The (src, dst) endpoints contributed by one block.

    Regenerable: the same (seed, shard) always yields the same batch,
    which is what lets the counting and filling passes stream the graph
    without ever holding the full edge list.
    """
    rng = _shard_rng(seed, _STREAM_EDGES, shard)
    lo = shard * spec.block_size
    m_in = int(rng.poisson(spec.block_size * spec.mean_block_degree / 2.0))
    src_in = lo + rng.integers(0, spec.block_size, m_in)
    dst_in = lo + rng.integers(0, spec.block_size, m_in)
    m_out = int(rng.poisson(spec.block_size * spec.mean_city_degree / 2.0))
    src_out = lo + rng.integers(0, spec.block_size, m_out)
    dst_out = rng.integers(0, n, m_out)
    src = np.concatenate([src_in, src_out])
    dst = np.concatenate([dst_in, dst_out])
    keep = src != dst
    return src[keep], dst[keep]


def _scatter_fill(
    cursor: "np.ndarray", indices: "np.ndarray", src: "np.ndarray", dst: "np.ndarray"
) -> None:
    """Write ``dst`` values into each ``src`` row's next free CSR slots.

    A plain ``indices[cursor[src]] = dst`` would lose edges whenever a
    source repeats within the batch (same cursor read twice), so the
    batch is grouped by source and each duplicate gets its rank as an
    offset.
    """
    order = np.argsort(src, kind="stable")
    s = src[order]
    d = dst[order]
    starts = np.flatnonzero(np.concatenate(([True], s[1:] != s[:-1])))
    counts = np.diff(np.concatenate((starts, [s.size])))
    ranks = np.arange(s.size, dtype=np.int64) - np.repeat(starts, counts)
    indices[cursor[s] + ranks] = d
    np.add.at(cursor, s[starts], counts)


def _build_graph(spec: TierSpec, seed: int, n: int) -> CSRGraph:
    # Pass 1: degree counting only — every batch is discarded after its
    # bincount, so memory stays at one shard.
    degrees = np.zeros(n, dtype=np.int64)
    for b in range(spec.blocks):
        src, dst = _shard_edge_batch(spec, seed, b, n)
        degrees += np.bincount(src, minlength=n)
        degrees += np.bincount(dst, minlength=n)

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.empty(total, dtype=np.int32)

    # Pass 2: regenerate the identical batches and scatter both
    # orientations straight into the final buffer.
    cursor = indptr[:-1].copy()
    for b in range(spec.blocks):
        src, dst = _shard_edge_batch(spec, seed, b, n)
        _scatter_fill(cursor, indices, src, dst)
        _scatter_fill(cursor, indices, dst, src)

    # Sort every row at once via one composite key, then drop duplicate
    # (row, neighbour) pairs; both orientations of a duplicate edge are
    # dropped together, so symmetry survives.
    key = np.repeat(np.arange(n, dtype=np.int64), degrees)
    key *= n
    key += indices
    del indices
    key.sort()
    unique = np.ones(key.size, dtype=bool)
    if key.size > 1:
        unique[1:] = key[1:] != key[:-1]
    key = key[unique]
    rows = key // n
    final_indices = (key % n).astype(np.int32)
    del key
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
    return CSRGraph(indptr, final_indices)
