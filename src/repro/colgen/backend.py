"""Array backend selection: numpy when available, stdlib ``array`` otherwise.

The columnar generator stores every per-person and per-account attribute
in a flat, typed buffer.  With numpy installed those buffers are compact
dtyped ``ndarray``\\ s and the draws are vectorised; on a minimal install
(no third-party packages at all) the same columns live in stdlib
``array.array`` buffers and generation falls back to scalar loops.  The
fallback is deliberately slow-but-correct: it keeps the ``smoke`` and
``paper`` tiers (and every seed test that uses them) runnable anywhere,
while the ``city``/``metro`` tiers refuse to start without numpy rather
than grind for hours.

Nothing in this module draws randomness; it only owns buffer
construction so the rest of the package can stay backend-agnostic.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence, Union

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - minimal-install path
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

#: A frozen integer column: numpy array or stdlib typed array.
IntBuffer = Union["np.ndarray", array]
FloatBuffer = Union["np.ndarray", array]


class ColgenDependencyError(RuntimeError):
    """Raised when a tier needs numpy and the install does not have it."""


def require_numpy(feature: str) -> None:
    """Fail fast (with an actionable message) when numpy is missing."""
    if not HAS_NUMPY:
        raise ColgenDependencyError(
            f"{feature} needs numpy (install the 'scale' extra: "
            "pip install repro[scale]); the smoke/paper tiers run without it"
        )


# ----------------------------------------------------------------------
# Buffer constructors (freeze a python list into a typed column)
# ----------------------------------------------------------------------

def int_column(values: Iterable[int], *, dtype: str = "i8") -> IntBuffer:
    """Freeze integers into a typed column.

    ``dtype`` is a numpy-style code (``i1 i2 i4 i8 u8``); the stdlib
    fallback always uses 8-byte signed ('q') or unsigned ('Q') slots —
    correctness over compactness on installs that opted out of numpy.
    """
    if HAS_NUMPY:
        return np.asarray(list(values), dtype=np.dtype(dtype))
    return array("Q" if dtype == "u8" else "q", values)


def float_column(values: Iterable[float]) -> FloatBuffer:
    if HAS_NUMPY:
        return np.asarray(list(values), dtype=np.float64)
    return array("d", values)


def buffer_nbytes(buf: Union[IntBuffer, FloatBuffer, None]) -> int:
    """Approximate heap footprint of one column, in bytes."""
    if buf is None:
        return 0
    if HAS_NUMPY and isinstance(buf, np.ndarray):
        return int(buf.nbytes)
    return len(buf) * buf.itemsize  # type: ignore[union-attr]


def cumulative_sum(counts: Sequence[int]) -> IntBuffer:
    """Exclusive-prefix-sum with a trailing total: the CSR ``indptr`` shape."""
    if HAS_NUMPY:
        out = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(np.asarray(counts, dtype=np.int64), out=out[1:])
        return out
    out = array("q", bytes(8 * (len(counts) + 1)))
    total = 0
    for i, c in enumerate(counts):
        total += int(c)
        out[i + 1] = total
    return out
