"""Worldgen benchmarking: throughput, phase timings and peak RSS.

One entry point, :func:`bench_worldgen`, runs a tier and returns the
machine-readable record that lands in ``BENCH_worldgen.json`` — the
artifact CI uploads and the 2GB-ceiling city job asserts against.

Timing uses ``time.perf_counter`` only (CLOCK001: wall-clock reads are
confined to ``repro.telemetry``), so the records carry durations and
counters, never timestamps.
"""

from __future__ import annotations

import platform
from typing import Any, Dict, Optional

# Shared with the rest of the perf trajectory; re-exported here so
# existing ``from repro.colgen.bench import peak_rss_bytes`` callers
# keep working.
from repro.perf.record import _RSS_UNIT, atomic_write_json, peak_rss_bytes

from .backend import HAS_NUMPY
from .generate import generate

__all__ = ["_RSS_UNIT", "bench_worldgen", "peak_rss_bytes", "write_bench_json"]


def bench_worldgen(
    tier_name: str,
    seed: int = 1,
    *,
    school: str = "hs1",
    blocks: Optional[int] = None,
) -> Dict[str, Any]:
    """Generate one tier and measure it.  Returns the bench record."""
    rss_before = peak_rss_bytes()
    world = generate(tier_name, seed, school=school, blocks=blocks)
    rss_after = peak_rss_bytes()

    wall = float(world.stats.get("wall_seconds", 0.0)) or 1e-9
    record: Dict[str, Any] = {
        "benchmark": "worldgen",
        "tier": tier_name,
        "seed": seed,
        "accounts": world.n_accounts,
        "people": world.n_people,
        "edges": world.n_edges,
        "graph_materialized": world.csr is not None,
        "accounts_per_second": world.n_accounts / wall,
        "wall_seconds": wall,
        "graph_build_seconds": float(world.stats.get("graph_seconds", 0.0)),
        "column_nbytes": world.column_nbytes,
        "graph_nbytes": world.graph_nbytes,
        "peak_rss_bytes": rss_after,
        "peak_rss_before_bytes": rss_before,
        "backend": "numpy" if HAS_NUMPY else "stdlib-array",
        "python": platform.python_version(),
    }
    for key in ("build_seconds", "encode_seconds", "columns_seconds"):
        if key in world.stats:
            record[key] = float(world.stats[key])
    return record


def write_bench_json(record: Dict[str, Any], path: str) -> None:
    """Write the flat worldgen record (atomic, like every BENCH file)."""
    atomic_write_json(record, path)
