"""Worldgen benchmarking: throughput, phase timings and peak RSS.

One entry point, :func:`bench_worldgen`, runs a tier and returns the
machine-readable record that lands in ``BENCH_worldgen.json`` — the
artifact CI uploads and the 2GB-ceiling city job asserts against.

Timing uses ``time.perf_counter`` only (CLOCK001: wall-clock reads are
confined to ``repro.telemetry``), so the records carry durations and
counters, never timestamps.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
from typing import Any, Dict, Optional

from .backend import HAS_NUMPY
from .generate import generate

#: ru_maxrss is kibibytes on Linux, bytes on macOS.
_RSS_UNIT = 1 if sys.platform == "darwin" else 1024


def peak_rss_bytes() -> int:
    """High-water-mark resident set size of this process, in bytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RSS_UNIT


def bench_worldgen(
    tier_name: str,
    seed: int = 1,
    *,
    school: str = "hs1",
    blocks: Optional[int] = None,
) -> Dict[str, Any]:
    """Generate one tier and measure it.  Returns the bench record."""
    rss_before = peak_rss_bytes()
    world = generate(tier_name, seed, school=school, blocks=blocks)
    rss_after = peak_rss_bytes()

    wall = float(world.stats.get("wall_seconds", 0.0)) or 1e-9
    record: Dict[str, Any] = {
        "benchmark": "worldgen",
        "tier": tier_name,
        "seed": seed,
        "accounts": world.n_accounts,
        "people": world.n_people,
        "edges": world.n_edges,
        "graph_materialized": world.csr is not None,
        "accounts_per_second": world.n_accounts / wall,
        "wall_seconds": wall,
        "graph_build_seconds": float(world.stats.get("graph_seconds", 0.0)),
        "column_nbytes": world.column_nbytes,
        "graph_nbytes": world.graph_nbytes,
        "peak_rss_bytes": rss_after,
        "peak_rss_before_bytes": rss_before,
        "backend": "numpy" if HAS_NUMPY else "stdlib-array",
        "python": platform.python_version(),
    }
    for key in ("build_seconds", "encode_seconds", "columns_seconds"):
        if key in world.stats:
            record[key] = float(world.stats[key])
    return record


def write_bench_json(record: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
