"""Named size tiers: the sample -> state -> country ladder for worldgen.

Mirroring pseudopeople's tiered input data, every tier is one name the
CLI, benchmarks and CI can ask for:

* ``smoke``  — ~7k accounts via the calibrated object generator; fast
  enough for unit tests and CI smoke runs.
* ``paper``  — the paper's school presets (HS1 by default), the scale
  every published number is calibrated at; also object-generated, then
  encoded to columns.
* ``city``   — ~1M accounts, generated natively on the columnar path
  with sharded draws and a streaming CSR build.
* ``metro``  — ~10M accounts, generation-only: demographic and account
  columns are produced shard by shard, but adjacency is never
  materialised (that is the next scale rung, not this one).

The two small tiers run the legacy generator on purpose: they inherit
its full behavioural calibration *and* prove the columnar encoding is
lossless (see ``tests/test_colgen_equivalence.py``).  The two large
tiers trade per-person behavioural nuance for three orders of magnitude
of scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class TierSpec:
    """One rung of the size ladder."""

    name: str
    description: str
    kind: str  # "preset" (object generator + encode) or "native" (columnar)
    #: preset tiers: the worldgen preset to build (None = caller's choice,
    #: defaulting to hs1 — the CLI exposes this as --school).
    preset: Optional[str] = None
    #: native tiers: the sharded-generation shape.
    blocks: int = 0
    block_size: int = 0
    mean_block_degree: float = 16.0
    mean_city_degree: float = 8.0
    materialize_graph: bool = True

    @property
    def approx_accounts(self) -> int:
        if self.kind == "native":
            return self.blocks * self.block_size
        return {"smoke": 7_000, "paper": 15_000}.get(self.name, 0)

    def with_blocks(self, blocks: int) -> "TierSpec":
        return replace(self, blocks=blocks)


TIERS: Dict[str, TierSpec] = {
    spec.name: spec
    for spec in (
        TierSpec(
            name="smoke",
            description="~7k accounts, object-generated; CI and unit tests",
            kind="preset",
            preset="smoke",
        ),
        TierSpec(
            name="paper",
            description="the paper's school presets (hs1/hs2/hs3)",
            kind="preset",
            preset=None,
        ),
        TierSpec(
            name="city",
            description="~1M accounts, native columnar generation + CSR",
            kind="native",
            blocks=250,
            block_size=4_000,
        ),
        TierSpec(
            name="metro",
            description="~10M accounts, generation-only (no adjacency)",
            kind="native",
            blocks=2_500,
            block_size=4_000,
            materialize_graph=False,
        ),
    )
}

TIER_NAMES: Tuple[str, ...] = tuple(TIERS)


def tier(name: str) -> TierSpec:
    try:
        return TIERS[name]
    except KeyError:
        raise KeyError(
            f"unknown tier {name!r}; choose from {sorted(TIERS)}"
        ) from None
