"""repro.perf — the repo-wide performance trajectory.

Turns ad-hoc bench JSON into a measured, gateable trend:

* :mod:`repro.perf.record` — the versioned ``BENCH_*.json`` schema
  (stable keys, explicit units/directions, environment fingerprint,
  durations only) plus the shared :func:`peak_rss_bytes`;
* :mod:`repro.perf.benches` — deterministic SimClock benchmarks for
  the crawl, attack and linkage hot paths (imported lazily by the CLI;
  import it explicitly when driving benches from code);
* :mod:`repro.perf.profile` — per-phase hotspot aggregation over
  telemetry spans and an opt-in cProfile breakdown;
* :mod:`repro.perf.compare` — the regression gate behind
  ``python -m repro bench compare`` and CI's trajectory job.
"""

from .compare import (
    ComparisonItem,
    ComparisonReport,
    DEFAULT_TOLERANCE_PCT,
    RecordSetError,
    check_budgets,
    compare_sets,
    load_record_set,
    render_markdown,
    render_text,
)
from .profile import (
    PhaseStat,
    aggregate_phases,
    phases_json,
    profile_call,
    render_phase_table,
)
from .record import (
    BenchRecordError,
    SCHEMA_VERSION,
    atomic_write_json,
    ensure_valid,
    environment_fingerprint,
    load_record,
    metric,
    new_record,
    peak_rss_bytes,
    validate_record,
    write_record,
)

__all__ = [
    "BenchRecordError",
    "ComparisonItem",
    "ComparisonReport",
    "DEFAULT_TOLERANCE_PCT",
    "PhaseStat",
    "RecordSetError",
    "SCHEMA_VERSION",
    "aggregate_phases",
    "atomic_write_json",
    "check_budgets",
    "compare_sets",
    "ensure_valid",
    "environment_fingerprint",
    "load_record",
    "load_record_set",
    "metric",
    "new_record",
    "peak_rss_bytes",
    "phases_json",
    "profile_call",
    "render_markdown",
    "render_phase_table",
    "render_text",
    "validate_record",
    "write_record",
]
