"""The versioned bench-record schema every ``BENCH_*.json`` follows.

One record is one point on the repo's perf trajectory.  The contract:

* **stable keys** — ``schema_version``, ``benchmark``, ``params``,
  ``environment``, ``metrics`` and optional ``phases``/``profile``;
  producers may add extra top-level sections, comparators ignore them;
* **explicit units and directions** — every metric says what it is
  measured in and whether bigger is better (``higher``), smaller is
  better (``lower``), the value must be bit-identical across seeded
  runs (``exact``), or it is context only (``info``);
* **durations, never timestamps** — records carry elapsed seconds and
  counters so they stay CLOCK001-clean and diffable across machines;
  the validator rejects timestamp-shaped keys outright;
* **an environment fingerprint** — enough machine context to explain
  a trajectory step without ever gating on it.

:func:`peak_rss_bytes` lives here (shared by worldgen and the perf
benches) because memory high-water marks are part of every record.
"""

from __future__ import annotations

import json
import math
import os
import platform
import resource
import sys
from importlib import util as importlib_util
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

#: Bump when a key is renamed/removed or its meaning changes; the
#: comparator refuses to gate across versions (it warns and skips).
SCHEMA_VERSION = 1

#: Comparison semantics a metric may declare.
DIRECTIONS = frozenset({"higher", "lower", "exact", "info"})

#: The unit vocabulary.  Closed on purpose: a typo'd unit is a schema
#: error at emit time, not a silently-uncompared metric in CI.
UNITS = frozenset(
    {
        "seconds",
        "sim_seconds",
        "pages/sec",
        "accounts/sec",
        "pairs/sec",
        "files/sec",
        "bytes",
        "count",
        "ratio",
        "percent",
    }
)

#: Required environment-fingerprint keys.
ENVIRONMENT_KEYS = ("python", "implementation", "platform", "machine", "numpy", "cpu_count")

#: Key fragments the durations-only discipline forbids anywhere.
_TIMESTAMP_FRAGMENTS = ("timestamp", "_epoch", "wall_clock_at")

#: ru_maxrss is kibibytes on Linux, bytes on macOS.
_RSS_UNIT = 1 if sys.platform == "darwin" else 1024

Scalar = Union[str, int, float, bool, None]


class BenchRecordError(ValueError):
    """A record violated the schema; carries every problem found."""

    def __init__(self, problems: List[str]) -> None:
        self.problems = list(problems)
        super().__init__("; ".join(self.problems))


def peak_rss_bytes() -> int:
    """High-water-mark resident set size of this process, in bytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RSS_UNIT


def environment_fingerprint() -> Dict[str, Any]:
    """Where a record was measured — context for trend steps, never a gate."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": importlib_util.find_spec("numpy") is not None,
        "cpu_count": os.cpu_count() or 1,
    }


def metric(
    value: float,
    unit: str,
    direction: str = "info",
    tolerance_pct: Optional[float] = None,
    max_value: Optional[float] = None,
) -> Dict[str, Any]:
    """One metric entry.  ``tolerance_pct`` is the noise band the
    comparator allows before calling a move a regression;  ``max_value``
    is an absolute budget checked against the new record alone."""
    entry: Dict[str, Any] = {"value": value, "unit": unit, "direction": direction}
    if tolerance_pct is not None:
        entry["tolerance_pct"] = tolerance_pct
    if max_value is not None:
        entry["max_value"] = max_value
    return entry


def new_record(
    benchmark: str,
    params: Mapping[str, Scalar],
    metrics: Mapping[str, Mapping[str, Any]],
    phases: Optional[Iterable[Mapping[str, Any]]] = None,
    profile: Optional[Iterable[Mapping[str, Any]]] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """Assemble a schema-shaped record (validate separately on write)."""
    record: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "params": dict(params),
        "environment": environment_fingerprint(),
        "metrics": {name: dict(entry) for name, entry in metrics.items()},
    }
    if phases is not None:
        record["phases"] = [dict(p) for p in phases]
    if profile is not None:
        record["profile"] = [dict(p) for p in profile]
    record.update(extra)
    return record


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

def _is_number(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def _check_metric(name: str, entry: Any, problems: List[str]) -> None:
    where = f"metrics[{name!r}]"
    if not isinstance(entry, Mapping):
        problems.append(f"{where}: not a mapping")
        return
    if not _is_number(entry.get("value")):
        problems.append(f"{where}: 'value' must be a finite number")
    if entry.get("unit") not in UNITS:
        problems.append(
            f"{where}: unit {entry.get('unit')!r} not in the schema vocabulary"
        )
    if entry.get("direction") not in DIRECTIONS:
        problems.append(
            f"{where}: direction {entry.get('direction')!r} "
            f"not one of {sorted(DIRECTIONS)}"
        )
    for optional in ("tolerance_pct", "max_value"):
        if optional in entry and not _is_number(entry[optional]):
            problems.append(f"{where}: {optional!r} must be a finite number")
    if _is_number(entry.get("tolerance_pct")) and entry["tolerance_pct"] < 0:
        problems.append(f"{where}: 'tolerance_pct' must be >= 0")


def _check_phase(index: int, entry: Any, problems: List[str]) -> None:
    where = f"phases[{index}]"
    if not isinstance(entry, Mapping):
        problems.append(f"{where}: not a mapping")
        return
    if not isinstance(entry.get("name"), str) or not entry.get("name"):
        problems.append(f"{where}: 'name' must be a non-empty string")
    for key in ("calls", "wall_seconds", "sim_seconds"):
        if not _is_number(entry.get(key)):
            problems.append(f"{where}: {key!r} must be a finite number")


def validate_record(record: Any) -> List[str]:
    """Every schema violation in ``record`` (empty list == valid)."""
    if not isinstance(record, Mapping):
        return ["record is not a JSON object"]
    problems: List[str] = []

    version = record.get("schema_version")
    if version != SCHEMA_VERSION:
        problems.append(
            f"schema_version {version!r} != supported {SCHEMA_VERSION}"
        )
    if not isinstance(record.get("benchmark"), str) or not record.get("benchmark"):
        problems.append("'benchmark' must be a non-empty string")

    env = record.get("environment")
    if not isinstance(env, Mapping):
        problems.append("'environment' must be a mapping")
    else:
        for key in ENVIRONMENT_KEYS:
            if key not in env:
                problems.append(f"environment missing key {key!r}")

    params = record.get("params", {})
    if not isinstance(params, Mapping):
        problems.append("'params' must be a mapping")
    else:
        for key, value in params.items():
            if not isinstance(value, (str, int, float, bool, type(None))):
                problems.append(f"params[{key!r}]: not a scalar")

    metrics = record.get("metrics")
    if not isinstance(metrics, Mapping) or not metrics:
        problems.append("'metrics' must be a non-empty mapping")
    else:
        for name, entry in metrics.items():
            _check_metric(name, entry, problems)

    phases = record.get("phases", [])
    if not isinstance(phases, list):
        problems.append("'phases' must be a list")
    else:
        for index, entry in enumerate(phases):
            _check_phase(index, entry, problems)

    for key in record:
        lowered = str(key).lower()
        if any(fragment in lowered for fragment in _TIMESTAMP_FRAGMENTS):
            problems.append(
                f"key {key!r} looks like a timestamp; records carry durations only"
            )
    if isinstance(metrics, Mapping):
        for name in metrics:
            lowered = str(name).lower()
            if any(fragment in lowered for fragment in _TIMESTAMP_FRAGMENTS):
                problems.append(
                    f"metric {name!r} looks like a timestamp; "
                    "records carry durations only"
                )
    return problems


def ensure_valid(record: Any) -> None:
    """Raise :class:`BenchRecordError` unless ``record`` is schema-clean."""
    problems = validate_record(record)
    if problems:
        raise BenchRecordError(problems)


# ----------------------------------------------------------------------
# I/O
# ----------------------------------------------------------------------

def atomic_write_json(payload: Any, path: Union[str, "os.PathLike[str]"]) -> None:
    """Serialise then ``os.replace`` so readers never see a torn record."""
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def write_record(record: Any, path: Union[str, "os.PathLike[str]"]) -> None:
    """Validate then atomically write one bench record."""
    ensure_valid(record)
    atomic_write_json(record, path)


def load_record(path: Union[str, "os.PathLike[str]"]) -> Dict[str, Any]:
    """Load one record file; raises ``BenchRecordError`` on non-objects."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise BenchRecordError([f"{os.fspath(path)}: record is not a JSON object"])
    return payload
