"""Deterministic benchmarks for the three unmeasured hot paths.

Each runner builds a seeded world, drives the pipeline through the same
code the experiments use, and returns a schema-shaped bench record
(:mod:`repro.perf.record`):

* :func:`bench_crawl` — the raw page-serving loop: seed harvest, every
  seed profile, every seed friend list.  Pages/sec is the number the
  async crawl engine (ROADMAP item 2) has to beat; the sim-vs-wall
  split shows how much of a crawl is politeness budget vs compute.
* :func:`bench_attack` — :class:`~repro.core.profiler.HighSchoolProfiler`
  end to end (enhanced + filtering), scored accounts per second, with
  the tracer's per-phase hotspot table embedded.
* :func:`bench_linkage` — the data-broker address matcher over the
  extended profiles, candidate address pairs per second.

Everything runs on the SimClock; records carry durations only.  Counter
metrics are declared ``exact`` — a seeded re-run must reproduce them
bit-for-bit, and the comparator reports any drift.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.core.api import make_client, run_attack
from repro.core.extension import build_extended_profiles
from repro.core.linkage import link_home_addresses
from repro.core.profiler import ProfilerConfig
from repro.telemetry.runtime import Telemetry
from repro.worldgen.presets import preset
from repro.worldgen.records import build_voter_registry
from repro.worldgen.world import World, build_world

from .profile import aggregate_phases, phases_json, profile_call
from .record import metric, new_record, peak_rss_bytes

#: Noise band for wall-clock throughput on shared runners.  Kept under
#: 20% so a one-fifth throughput loss — the kind of step a bad cache or
#: an accidental O(n^2) introduces — always gates.
THROUGHPUT_TOLERANCE_PCT = 15.0
#: Noise band for peak-RSS (allocator and interpreter jitter).
RSS_TOLERANCE_PCT = 20.0

#: Account-pool sizes the scheduler section of the crawl bench sweeps.
SCHEDULER_POOL_SIZES = (1, 4, 8)
#: Acceptance floor: an 8-account pool must finish the same crawl in at
#: most 1/3 the simulated time of a single account.  Encoded as an
#: inverse ratio so it gates as an absolute ``max_value`` budget.
MIN_POOL8_SPEEDUP = 3.0
#: Profile budget (``CrawlPlan.max_profiles``) for the scheduler sweep —
#: enough pages for a stable pages/sim-second figure, small enough that
#: the sweep's four extra worlds stay cheap on paper-tier presets.
SCHEDULER_BUDGET = 150


def _build(preset_name: str, seed: Optional[int]) -> World:
    return build_world(preset(preset_name, seed))


def _common_metrics(
    wall: float, sim: float, requests: int
) -> Dict[str, Dict[str, Any]]:
    return {
        "requests": metric(requests, "count", "exact"),
        "wall_seconds": metric(wall, "seconds", "info"),
        "sim_seconds": metric(sim, "sim_seconds", "exact"),
        "sim_to_wall_ratio": metric(sim / wall, "ratio", "info"),
        "peak_rss_bytes": metric(
            peak_rss_bytes(), "bytes", "lower", tolerance_pct=RSS_TOLERANCE_PCT
        ),
    }


def _maybe_profiled(
    fn: Callable[[], Any], profile_top: int
) -> "tuple[Any, Optional[list]]":
    if profile_top > 0:
        return profile_call(fn, top_n=profile_top)
    return fn(), None


def _scheduler_metrics(
    preset_name: str, seed: Optional[int]
) -> Dict[str, Dict[str, Any]]:
    """The crawl-engine section of the crawl record.

    Sweeps :data:`SCHEDULER_POOL_SIZES` on fresh worlds (object serving),
    asserting result-set identity across pool sizes; replays the largest
    pool against a shared :class:`RenderCache` for the hit-rate figure;
    and reruns it off an encoded :class:`ColumnarWorld` to hold the
    columnar serve path to the same result set.  Everything runs on the
    SimClock, so every number here is seeded-deterministic (``exact``)
    and the speedup floor gates as an absolute ``max_value`` budget.
    """
    from repro.colgen.serve import frontend_for_object_world, session_accounts
    from repro.crawler.accounts import AccountPool
    from repro.crawler.client import CrawlClient
    from repro.crawler.engine import CrawlPlan, CrawlScheduler
    from repro.osn.rendercache import RenderCache

    def scheduler_world(pool_size: int, cache: Optional[RenderCache] = None):
        world = _build(preset_name, seed)
        if cache is not None:
            world.frontend.set_cache(cache)
        uids = world.create_attacker_accounts(pool_size)
        plan = CrawlPlan(
            school_id=world.school().school_id, max_profiles=SCHEDULER_BUDGET
        )

        def one_pass():
            client = CrawlClient(
                world.frontend, AccountPool.of(uids), seed=world.config.seed
            )
            return CrawlScheduler(client, plan).run()

        return one_pass

    def effort_categories(result):
        # Table 3 categories; accounts_used legitimately varies by pool.
        report = result.effort
        return (
            report.seed_requests,
            report.profile_requests,
            report.friend_list_requests,
            report.other_requests,
        )

    results = {
        pool_size: scheduler_world(pool_size)()
        for pool_size in SCHEDULER_POOL_SIZES
    }
    solo = results[SCHEDULER_POOL_SIZES[0]]
    biggest = results[SCHEDULER_POOL_SIZES[-1]]
    pool_mismatches = sum(
        1
        for pool_size in SCHEDULER_POOL_SIZES[1:]
        if results[pool_size].result_signature() != solo.result_signature()
        or effort_categories(results[pool_size]) != effort_categories(solo)
    )

    # Hot-page replay: pass one fills the shared cache, pass two crawls
    # the identical page set again and must be served from it.
    cache = RenderCache()
    cached_pass = scheduler_world(SCHEDULER_POOL_SIZES[-1], cache=cache)
    warm = cached_pass()
    replay = cached_pass()
    cached_mismatches = int(
        replay.result_signature() != warm.result_signature()
    )

    # Columnar serving of the same world: encode, crawl, compare.
    world = _build(preset_name, seed)
    frontend = frontend_for_object_world(world)
    uids = session_accounts(frontend, SCHEDULER_POOL_SIZES[-1])
    client = CrawlClient(frontend, AccountPool.of(uids), seed=world.config.seed)
    plan = CrawlPlan(
        school_id=world.school().school_id, max_profiles=SCHEDULER_BUDGET
    )
    columnar = CrawlScheduler(client, plan).run()
    columnar_mismatches = int(
        columnar.result_signature() != biggest.result_signature()
        or effort_categories(columnar) != effort_categories(biggest)
    )

    metrics = {
        f"scheduler_pool{pool_size}_pages_per_sim_second": metric(
            results[pool_size].pages_per_sim_second, "pages/sec", "exact"
        )
        for pool_size in SCHEDULER_POOL_SIZES
    }
    metrics.update(
        {
            "scheduler_pages": metric(solo.pages, "count", "exact"),
            "scheduler_pool8_speedup": metric(
                solo.sim_seconds / biggest.sim_seconds, "ratio", "info"
            ),
            # Gate: at most 1/MIN_POOL8_SPEEDUP of the solo sim time.
            "scheduler_pool8_inverse_speedup": metric(
                biggest.sim_seconds / solo.sim_seconds,
                "ratio",
                "exact",
                max_value=1.0 / MIN_POOL8_SPEEDUP,
            ),
            "scheduler_result_mismatches": metric(
                pool_mismatches, "count", "exact", max_value=0
            ),
            "scheduler_cache_hit_rate": metric(
                cache.hit_rate * 100.0, "percent", "exact"
            ),
            "scheduler_cached_result_mismatches": metric(
                cached_mismatches, "count", "exact", max_value=0
            ),
            "scheduler_columnar_pages_per_sim_second": metric(
                columnar.pages_per_sim_second, "pages/sec", "exact"
            ),
            "scheduler_columnar_result_mismatches": metric(
                columnar_mismatches, "count", "exact", max_value=0
            ),
        }
    )
    return metrics


def bench_crawl(
    preset_name: str = "hs1",
    seed: Optional[int] = None,
    accounts: int = 2,
    profile_top: int = 0,
    serve: str = "object",
) -> Dict[str, Any]:
    """Full stranger-level crawl of one school: seeds, profiles, lists.

    ``serve`` picks what the baseline crawl runs against: ``object`` is
    the legacy per-account world, ``columnar`` encodes the same world
    and serves it off the columns (byte-identical pages, so every
    ``exact`` metric except wall-clock throughput must agree).  The
    scheduler section (``scheduler_*`` metrics) always measures both.
    """
    if serve not in ("object", "columnar"):
        raise ValueError(f"serve must be 'object' or 'columnar', got {serve!r}")
    world = _build(preset_name, seed)
    if serve == "columnar":
        from repro.colgen.serve import frontend_for_object_world, session_accounts
        from repro.crawler.accounts import AccountPool
        from repro.crawler.client import CrawlClient

        frontend = frontend_for_object_world(world)
        telemetry = Telemetry(frontend.clock)
        frontend.set_telemetry(telemetry)
        pool = AccountPool.of(session_accounts(frontend, accounts))
        client = CrawlClient(frontend, pool, telemetry=telemetry)
        clock = frontend.clock
    else:
        telemetry = Telemetry(world.clock)
        client = make_client(world, accounts, telemetry=telemetry)
        clock = world.clock
    school_id = world.school().school_id

    def crawl() -> Dict[int, str]:
        with telemetry.span("seeds"):
            seeds = client.collect_seeds(school_id)
        with telemetry.span("profiles"):
            for uid in sorted(seeds):
                client.fetch_profile(uid)
        with telemetry.span("friend_lists"):
            for uid in sorted(seeds):
                client.fetch_friend_list(uid)
        return seeds

    sim_start = clock.seconds()
    wall_start = time.perf_counter()
    seeds, profile = _maybe_profiled(crawl, profile_top)
    wall = time.perf_counter() - wall_start
    sim = clock.seconds() - sim_start
    telemetry.close()

    requests = client.effort_report().total
    metrics = {
        "pages_per_second": metric(
            requests / wall, "pages/sec", "higher",
            tolerance_pct=THROUGHPUT_TOLERANCE_PCT,
        ),
        "seeds": metric(len(seeds), "count", "exact"),
        **_common_metrics(wall, sim, requests),
        **_scheduler_metrics(preset_name, seed),
    }
    return new_record(
        "crawl",
        params={
            "preset": preset_name,
            "seed": world.config.seed,
            "accounts": accounts,
            "serve": serve,
            "scheduler_budget": SCHEDULER_BUDGET,
        },
        metrics=metrics,
        phases=phases_json(aggregate_phases(telemetry.tracer.finished)),
        profile=profile,
    )


def bench_attack(
    preset_name: str = "hs1",
    seed: Optional[int] = None,
    accounts: int = 2,
    threshold: int = 500,
    profile_top: int = 0,
) -> Dict[str, Any]:
    """The profiling methodology end to end (enhanced + filtering)."""
    world = _build(preset_name, seed)
    telemetry = Telemetry(world.clock)
    config = ProfilerConfig(threshold=threshold, enhanced=True, filtering=True)

    sim_start = world.clock.seconds()
    wall_start = time.perf_counter()
    result, profile = _maybe_profiled(
        lambda: run_attack(
            world, accounts=accounts, config=config, telemetry=telemetry
        ),
        profile_top,
    )
    wall = time.perf_counter() - wall_start
    sim = world.clock.seconds() - sim_start
    telemetry.close()

    metrics = {
        "accounts_scored_per_second": metric(
            len(result.scores) / wall, "accounts/sec", "higher",
            tolerance_pct=THROUGHPUT_TOLERANCE_PCT,
        ),
        "candidates_scored": metric(len(result.scores), "count", "exact"),
        "core_size": metric(result.extended_core_size, "count", "exact"),
        "ranking_length": metric(len(result.ranking), "count", "exact"),
        **_common_metrics(wall, sim, result.effort.total),
    }
    return new_record(
        "attack",
        params={
            "preset": preset_name,
            "seed": world.config.seed,
            "accounts": accounts,
            "threshold": threshold,
            "variant": "enhanced+filtering",
        },
        metrics=metrics,
        phases=phases_json(aggregate_phases(telemetry.tracer.finished)),
        profile=profile,
    )


def bench_linkage(
    preset_name: str = "hs1",
    seed: Optional[int] = None,
    accounts: int = 2,
    threshold: int = 400,
    profile_top: int = 0,
) -> Dict[str, Any]:
    """Data-broker address linkage over the extended profiles."""
    world = _build(preset_name, seed)
    telemetry = Telemetry(world.clock)
    client = make_client(world, accounts, telemetry=telemetry)

    with telemetry.span("attack"):
        result = run_attack(
            world,
            accounts=accounts,
            config=ProfilerConfig(threshold=threshold, enhanced=True, filtering=True),
            client=client,
        )
    with telemetry.span("extend"):
        extended = build_extended_profiles(result, client, t=threshold)
    with telemetry.span("registry"):
        registry = build_voter_registry(
            world.population,
            world.config.observation_year,
            seed=world.config.seed,
        )

    name_cache: Dict[int, Optional[str]] = {}

    def friend_name_of(uid: int) -> Optional[str]:
        if uid not in name_cache:
            view = result.profiles.get(uid) or client.fetch_profile(uid)
            name_cache[uid] = view.name if view else None
        return name_cache[uid]

    def link() -> Dict[int, list]:
        with telemetry.span("link"):
            return link_home_addresses(extended, registry, friend_name_of)

    wall_start = time.perf_counter()
    linked, profile = _maybe_profiled(link, profile_top)
    link_wall = time.perf_counter() - wall_start
    telemetry.close()

    pairs = sum(len(candidates) for candidates in linked.values())
    metrics = {
        "pairs_per_second": metric(
            pairs / link_wall, "pairs/sec", "higher",
            tolerance_pct=THROUGHPUT_TOLERANCE_PCT,
        ),
        "candidate_pairs": metric(pairs, "count", "exact"),
        "students_linked": metric(len(linked), "count", "exact"),
        "extended_profiles": metric(len(extended), "count", "exact"),
        "registered_voters": metric(len(registry), "count", "exact"),
        "link_wall_seconds": metric(link_wall, "seconds", "info"),
        "peak_rss_bytes": metric(
            peak_rss_bytes(), "bytes", "lower", tolerance_pct=RSS_TOLERANCE_PCT
        ),
    }
    return new_record(
        "linkage",
        params={
            "preset": preset_name,
            "seed": world.config.seed,
            "accounts": accounts,
            "threshold": threshold,
        },
        metrics=metrics,
        phases=phases_json(aggregate_phases(telemetry.tracer.finished)),
        profile=profile,
    )


def bench_worldgen_record(
    tier_name: str = "smoke", seed: int = 1, profile_top: int = 0
) -> Dict[str, Any]:
    """Wrap :func:`repro.colgen.bench.bench_worldgen` in the schema.

    The flat colgen record rides along under ``tier`` (byte-compatible
    keys for the CI city job); the comparable numbers are lifted into
    ``metrics``.
    """
    from repro.colgen.bench import bench_worldgen

    flat, profile = _maybe_profiled(
        lambda: bench_worldgen(tier_name, seed), profile_top
    )
    metrics = {
        "accounts_per_second": metric(
            flat["accounts_per_second"], "accounts/sec", "higher",
            tolerance_pct=THROUGHPUT_TOLERANCE_PCT,
        ),
        "accounts": metric(flat["accounts"], "count", "exact"),
        "edges": metric(flat["edges"], "count", "exact"),
        "column_bytes": metric(flat["column_nbytes"], "bytes", "lower",
                               tolerance_pct=RSS_TOLERANCE_PCT),
        "graph_bytes": metric(flat["graph_nbytes"], "bytes", "lower",
                              tolerance_pct=RSS_TOLERANCE_PCT),
        "wall_seconds": metric(flat["wall_seconds"], "seconds", "info"),
        "peak_rss_bytes": metric(
            flat["peak_rss_bytes"], "bytes", "lower",
            tolerance_pct=RSS_TOLERANCE_PCT,
        ),
    }
    return new_record(
        "worldgen",
        params={"tier": tier_name, "seed": seed, "backend": flat["backend"]},
        metrics=metrics,
        profile=profile,
        tier=flat,
    )


def bench_lint(
    paths: Optional[Any] = None,
    jobs: int = 1,
) -> Dict[str, Any]:
    """Cold vs warm lint of the default targets: the CI gate's own cost.

    Two runs against one fresh on-disk cache: the cold run parses every
    file and runs all rules (including the whole-program flow and
    concurrency passes); the warm run must serve the per-file phase
    entirely from the cache — ``warm_files_reparsed`` carries
    ``max_value=0``, so a cache-key bug that silently reverts lint CI
    to cold cost fails the bench outright rather than just slowing it.

    A second cold/warm pair runs only the scale pass (SCALE001-003 +
    DET002) against its own cache, so the interprocedural reachability
    analysis is costed separately from the per-file rule set and its
    cache signature (a strict subset of rule ids) is exercised too.
    """
    import tempfile

    from repro.lint.cache import LintCache, rule_signature
    from repro.lint.cli import default_paths
    from repro.lint.engine import lint_paths
    from repro.lint.rules import all_rules

    targets = list(paths) if paths else default_paths()
    rules = all_rules()
    signature = rule_signature([rule.rule_id for rule in rules])
    scale_ids = {"SCALE001", "SCALE002", "SCALE003", "DET002"}
    scale_rules = [rule for rule in rules if rule.rule_id in scale_ids]
    scale_signature = rule_signature([rule.rule_id for rule in scale_rules])

    def one_run(
        cache_file: str, selected: Any, sig: str
    ) -> "tuple[float, Any]":
        cache = LintCache(cache_file, sig)
        start = time.perf_counter()
        report = lint_paths(targets, rules=selected, cache=cache, jobs=jobs)
        return time.perf_counter() - start, report

    with tempfile.TemporaryDirectory(prefix="repro-lint-bench-") as tmp:
        cache_file = f"{tmp}/cache.json"
        cold_wall, cold = one_run(cache_file, rules, signature)
        warm_wall, warm = one_run(cache_file, rules, signature)
        scale_cache = f"{tmp}/scale-cache.json"
        scale_cold_wall, scale_cold = one_run(
            scale_cache, scale_rules, scale_signature
        )
        scale_warm_wall, scale_warm = one_run(
            scale_cache, scale_rules, scale_signature
        )

    metrics = {
        "cold_files_per_second": metric(
            cold.files_checked / cold_wall, "files/sec", "higher",
            tolerance_pct=THROUGHPUT_TOLERANCE_PCT,
        ),
        "warm_files_per_second": metric(
            warm.files_checked / warm_wall, "files/sec", "higher",
            tolerance_pct=THROUGHPUT_TOLERANCE_PCT,
        ),
        "cold_wall_seconds": metric(cold_wall, "seconds", "info"),
        "warm_wall_seconds": metric(warm_wall, "seconds", "info"),
        "files_checked": metric(cold.files_checked, "count", "exact"),
        "findings": metric(len(cold.findings), "count", "exact"),
        "warm_cache_hits": metric(warm.cache_hits, "count", "exact"),
        "warm_files_reparsed": metric(
            warm.files_reparsed, "count", "exact", max_value=0
        ),
        "scale_cold_files_per_second": metric(
            scale_cold.files_checked / scale_cold_wall, "files/sec", "higher",
            tolerance_pct=THROUGHPUT_TOLERANCE_PCT,
        ),
        "scale_warm_files_per_second": metric(
            scale_warm.files_checked / scale_warm_wall, "files/sec", "higher",
            tolerance_pct=THROUGHPUT_TOLERANCE_PCT,
        ),
        "scale_findings": metric(len(scale_cold.findings), "count", "exact"),
        "scale_warm_files_reparsed": metric(
            scale_warm.files_reparsed, "count", "exact", max_value=0
        ),
        "peak_rss_bytes": metric(
            peak_rss_bytes(), "bytes", "lower", tolerance_pct=RSS_TOLERANCE_PCT
        ),
    }
    return new_record(
        "lint",
        params={
            "targets": ",".join(targets),
            "jobs": jobs,
            "rules": len(rules),
        },
        metrics=metrics,
    )


#: name -> runner, the ``bench run`` registry.
BENCH_RUNNERS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "crawl": bench_crawl,
    "attack": bench_attack,
    "linkage": bench_linkage,
    "worldgen": bench_worldgen_record,
    "lint": bench_lint,
}
