"""``python -m repro bench run|compare|report`` — the perf-trajectory CLI.

``run`` executes the registered benchmarks and writes one schema-valid
``BENCH_<name>.json`` per bench; ``compare`` gates a new record set
against an old one (exit 1 on regression, 2 on infrastructure
failures); ``report`` renders the same comparison as a markdown trend
table without gating.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict

from .compare import (
    DEFAULT_TOLERANCE_PCT,
    RecordSetError,
    compare_sets,
    load_record_set,
    render_markdown,
    render_text,
)
from .record import write_record

#: Where ``bench run`` drops records by default (the CI artifact dir).
DEFAULT_OUTPUT_DIR = os.path.join("benchmarks", "output")

#: Benches ``bench run`` executes when asked for ``--all`` (worldgen has
#: its own CLI path and tier ladder; ``all`` here covers the attack-side
#: trajectory the paper's cost curves are about).
DEFAULT_BENCHES = ("crawl", "attack", "linkage")


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``run``/``compare``/``report`` sub-subcommands."""
    sub = parser.add_subparsers(dest="bench_command", required=True)

    run = sub.add_parser("run", help="run benchmarks, write BENCH_*.json")
    run.add_argument(
        "--bench",
        action="append",
        choices=("crawl", "attack", "linkage", "worldgen", "lint"),
        default=None,
        help="which benchmark to run (repeatable; default: all three hot paths)",
    )
    run.add_argument(
        "--all",
        action="store_true",
        help="run every attack-side benchmark (crawl, attack, linkage)",
    )
    run.add_argument("--preset", default="hs1", help="world preset (default hs1)")
    run.add_argument("--seed", type=int, default=None, help="world seed override")
    run.add_argument("--accounts", type=int, default=2, help="fake crawl accounts")
    run.add_argument(
        "--serve",
        choices=("object", "columnar"),
        default="object",
        help="serving path for the crawl bench baseline (default object)",
    )
    run.add_argument(
        "--tier", default="smoke", help="worldgen tier (worldgen bench only)"
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint worker processes (lint bench only)",
    )
    run.add_argument(
        "--profile-top",
        type=int,
        default=0,
        metavar="N",
        help="embed a cProfile top-N function breakdown (skews throughput)",
    )
    run.add_argument(
        "--out",
        default=DEFAULT_OUTPUT_DIR,
        metavar="DIR",
        help=f"record output directory (default {DEFAULT_OUTPUT_DIR})",
    )
    run.set_defaults(bench_func=cmd_run)

    compare = sub.add_parser(
        "compare", help="gate a new record set against an old one"
    )
    _add_compare_arguments(compare)
    compare.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (bootstrap runs)",
    )
    compare.add_argument(
        "--verbose", action="store_true", help="also list in-band metrics"
    )
    compare.set_defaults(bench_func=cmd_compare)

    report = sub.add_parser(
        "report", help="render a markdown trend report (never gates)"
    )
    _add_compare_arguments(report)
    report.add_argument(
        "--out", default=None, metavar="PATH", help="also write the markdown here"
    )
    report.set_defaults(bench_func=cmd_report)


def _add_compare_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("old", help="old record set (directory or file)")
    parser.add_argument("new", help="new record set (directory or file)")
    parser.add_argument(
        "--default-tolerance",
        type=float,
        default=DEFAULT_TOLERANCE_PCT,
        metavar="PCT",
        help="noise band for metrics that do not declare their own "
        f"(default {DEFAULT_TOLERANCE_PCT:g}%%)",
    )


def run_bench(args: argparse.Namespace) -> int:
    """Dispatch target registered on the ``bench`` subparser."""
    return int(args.bench_func(args))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_run(args: argparse.Namespace) -> int:
    from .benches import BENCH_RUNNERS  # heavy import (worldgen/core), defer

    names = list(args.bench or ())
    if args.all or not names:
        names = [n for n in DEFAULT_BENCHES if n not in names] + names
        names.sort(key=("crawl", "attack", "linkage", "worldgen", "lint").index)
    os.makedirs(args.out, exist_ok=True)
    for name in names:
        runner = BENCH_RUNNERS[name]
        kwargs: Dict[str, Any] = {}
        if name == "worldgen":
            kwargs.update(
                tier_name=args.tier, seed=args.seed or 1,
                profile_top=args.profile_top,
            )
        elif name == "lint":
            kwargs.update(jobs=args.jobs)
        else:
            kwargs.update(
                preset_name=args.preset, seed=args.seed,
                accounts=args.accounts, profile_top=args.profile_top,
            )
            if name == "crawl":
                kwargs["serve"] = args.serve
        record = runner(**kwargs)
        path = os.path.join(args.out, f"BENCH_{name}.json")
        write_record(record, path)
        summary = ", ".join(
            f"{metric_name}={entry['value']:g} {entry['unit']}"
            for metric_name, entry in sorted(record["metrics"].items())
            if entry["direction"] in ("higher", "lower")
        )
        print(f"{name}: {summary}")
        print(f"  -> {path}")
    return 0


def _load_both(args: argparse.Namespace):
    old = load_record_set(args.old)
    new = load_record_set(args.new)
    if not new:
        raise RecordSetError(f"new record set {args.new!r} is empty")
    return old, new


def cmd_compare(args: argparse.Namespace) -> int:
    try:
        old, new = _load_both(args)
        report = compare_sets(
            old, new, default_tolerance_pct=args.default_tolerance
        )
    except RecordSetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_text(report, verbose=args.verbose))
    if report.ok:
        return 0
    if args.warn_only:
        print("warn-only: regressions reported but not gating", file=sys.stderr)
        return 0
    return 1


def cmd_report(args: argparse.Namespace) -> int:
    try:
        old, new = _load_both(args)
        report = compare_sets(
            old, new, default_tolerance_pct=args.default_tolerance
        )
    except RecordSetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    markdown = render_markdown(report)
    print(markdown)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(markdown + "\n")
    return 0
