"""Phase and function profiling for bench records.

The attack pipeline already opens :mod:`repro.telemetry.tracing` spans
around its phases (seeds, core, scoring, candidates, threshold); this
module folds those finished spans into the per-phase hotspot table a
bench record embeds — wall seconds (compute cost) next to sim seconds
(the paper's crawl-duration unit), per phase.

For deeper digs, :func:`profile_call` wraps any callable in
``cProfile`` and returns a JSON-serialisable top-N function breakdown.
Opt-in only: profiling skews throughput, so gated metrics should come
from unprofiled runs.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Tuple, TypeVar

from repro.telemetry.tracing import SpanRecord

T = TypeVar("T")


@dataclass(frozen=True)
class PhaseStat:
    """Aggregated cost of one named pipeline phase."""

    name: str
    calls: int
    wall_seconds: float
    sim_seconds: float


def aggregate_phases(spans: Iterable[SpanRecord]) -> List[PhaseStat]:
    """Fold finished spans into per-phase totals, hottest (wall) first."""
    calls: Dict[str, int] = {}
    wall: Dict[str, float] = {}
    sim: Dict[str, float] = {}
    for span in spans:
        calls[span.name] = calls.get(span.name, 0) + 1
        wall[span.name] = wall.get(span.name, 0.0) + span.wall_seconds
        sim[span.name] = sim.get(span.name, 0.0) + span.sim_seconds
    stats = [
        PhaseStat(name=name, calls=calls[name], wall_seconds=wall[name], sim_seconds=sim[name])
        for name in calls
    ]
    stats.sort(key=lambda s: (-s.wall_seconds, s.name))
    return stats


def phases_json(stats: Iterable[PhaseStat]) -> List[Dict[str, Any]]:
    """The ``phases`` section of a bench record."""
    return [
        {
            "name": stat.name,
            "calls": stat.calls,
            "wall_seconds": stat.wall_seconds,
            "sim_seconds": stat.sim_seconds,
        }
        for stat in stats
    ]


def render_phase_table(stats: Iterable[PhaseStat]) -> str:
    """Human-readable hotspot table for text exhibits."""
    from repro.analysis.tables import ascii_table

    rows = [
        (
            stat.name,
            stat.calls,
            f"{stat.wall_seconds * 1000:.1f}",
            f"{stat.sim_seconds:.0f}",
        )
        for stat in stats
    ]
    return ascii_table(
        ("phase", "calls", "wall ms", "sim s"),
        rows,
        title="Per-phase hotspots (wall = compute, sim = crawl budget)",
    )


def profile_call(
    fn: Callable[[], T], top_n: int = 20
) -> Tuple[T, List[Dict[str, Any]]]:
    """Run ``fn`` under cProfile; return its result and the top-N
    functions by cumulative time, JSON-shaped for the record's
    ``profile`` section."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    entries: List[Dict[str, Any]] = []
    for (filename, line, function), (cc, nc, tottime, cumtime, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        del cc
        entries.append(
            {
                "function": function,
                "file": filename,
                "line": line,
                "calls": nc,
                "tottime_seconds": tottime,
                "cumtime_seconds": cumtime,
            }
        )
    entries.sort(key=lambda e: (-e["cumtime_seconds"], e["file"], e["line"]))
    return result, entries[:top_n]
