"""Compare two bench-record sets and gate CI on regressions.

A record *set* is a directory of ``BENCH_*.json`` files (or one file);
records pair up by file stem.  For each paired metric the comparator
applies the metric's own noise band (``tolerance_pct``, falling back to
a caller default):

* ``higher`` metrics (throughput) regress when the new value drops
  below ``old * (1 - tol)``;
* ``lower`` metrics (RSS, bytes) regress when the new value climbs
  above ``old * (1 + tol)``;
* ``exact`` metrics (seeded request/entity counts) must match
  bit-for-bit — drift is reported as *changed*, a warning rather than
  a gate, because an intentional algorithm change legitimately moves
  them and the next trajectory point re-baselines;
* ``info`` metrics never gate.

Independently of the old set, any metric carrying ``max_value`` is an
absolute budget (e.g. telemetry overhead < 10%) and fails when the new
value exceeds it.

Gating outcomes: a lost benchmark or lost metric fails (measurement
coverage must not silently shrink), a schema-version mismatch skips the
pair with a warning (first run after a schema bump must not brick CI),
and ``--warn-only`` downgrades every failure for bootstrap runs.
Exit codes: 0 clean, 1 regression, 2 infrastructure (unreadable or
schema-invalid new records).
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .record import SCHEMA_VERSION, load_record, validate_record

#: Fallback noise band when a metric does not declare tolerance_pct.
DEFAULT_TOLERANCE_PCT = 20.0

#: Item kinds that gate (fail the compare) vs. merely inform.
GATING_KINDS = frozenset({"regression", "budget", "missing-metric", "missing-benchmark"})


class RecordSetError(ValueError):
    """A record set could not be loaded/validated (infrastructure)."""


@dataclass(frozen=True)
class ComparisonItem:
    """One compared metric (or one set-level event)."""

    benchmark: str
    kind: str  # ok | improvement | regression | changed | budget |
    #          # missing-metric | missing-benchmark | new-metric |
    #          # new-benchmark | skipped-version
    metric: str = ""
    unit: str = ""
    direction: str = ""
    old: Optional[float] = None
    new: Optional[float] = None
    delta_pct: Optional[float] = None
    tolerance_pct: Optional[float] = None
    note: str = ""

    @property
    def gates(self) -> bool:
        return self.kind in GATING_KINDS


@dataclass
class ComparisonReport:
    """Everything one compare produced, renderable and gateable."""

    items: List[ComparisonItem] = field(default_factory=list)

    def by_kind(self, *kinds: str) -> List[ComparisonItem]:
        return [item for item in self.items if item.kind in kinds]

    @property
    def regressions(self) -> List[ComparisonItem]:
        return [item for item in self.items if item.gates]

    @property
    def ok(self) -> bool:
        return not self.regressions


def load_record_set(path: str) -> Dict[str, Dict[str, Any]]:
    """Load ``BENCH_*.json`` records under ``path``, keyed by stem.

    ``path`` may be a directory or a single record file.  Unreadable
    JSON raises :class:`RecordSetError`; schema validity is judged
    per-pairing so old-format artifacts degrade to warnings.
    """
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
    elif os.path.exists(path):
        files = [path]
    else:
        raise RecordSetError(f"no such record set: {path!r}")
    records: Dict[str, Dict[str, Any]] = {}
    for file_path in files:
        stem = os.path.basename(file_path)
        if stem.startswith("BENCH_"):
            stem = stem[len("BENCH_"):]
        if stem.endswith(".json"):
            stem = stem[: -len(".json")]
        try:
            records[stem] = load_record(file_path)
        except ValueError as exc:
            raise RecordSetError(f"cannot load {file_path!r}: {exc}") from exc
    return records


def check_budgets(record: Mapping[str, Any], benchmark: str = "") -> List[ComparisonItem]:
    """Absolute ``max_value`` budgets of one record (no old set needed)."""
    name = benchmark or str(record.get("benchmark", "?"))
    items: List[ComparisonItem] = []
    metrics = record.get("metrics")
    if not isinstance(metrics, Mapping):
        return items
    for metric_name, entry in sorted(metrics.items()):
        if not isinstance(entry, Mapping) or "max_value" not in entry:
            continue
        value, ceiling = entry.get("value"), entry["max_value"]
        if isinstance(value, (int, float)) and value > ceiling:
            items.append(
                ComparisonItem(
                    benchmark=name,
                    kind="budget",
                    metric=metric_name,
                    unit=str(entry.get("unit", "")),
                    direction=str(entry.get("direction", "")),
                    new=float(value),
                    note=f"value {value:g} exceeds budget {ceiling:g}",
                )
            )
    return items


def _classify(
    direction: str,
    old: float,
    new: float,
    tolerance_pct: float,
) -> Tuple[str, str]:
    """(kind, note) for one paired metric value."""
    if direction == "info":
        return "ok", ""
    if direction == "exact":
        if old == new:
            return "ok", ""
        return "changed", (
            "seeded value drifted; expected bit-for-bit reproducibility "
            "(re-baseline if the change is intentional)"
        )
    if old == 0.0:
        return ("ok", "") if new == 0.0 else ("changed", "old value was zero")
    band = tolerance_pct / 100.0
    if direction == "higher":
        if new < old * (1.0 - band):
            return "regression", f"dropped past the -{tolerance_pct:g}% band"
        if new > old * (1.0 + band):
            return "improvement", ""
        return "ok", ""
    # direction == "lower"
    if new > old * (1.0 + band):
        return "regression", f"grew past the +{tolerance_pct:g}% band"
    if new < old * (1.0 - band):
        return "improvement", ""
    return "ok", ""


def _compare_pair(
    name: str,
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    default_tolerance_pct: float,
) -> List[ComparisonItem]:
    items: List[ComparisonItem] = []
    old_version = old.get("schema_version")
    new_version = new.get("schema_version")
    if old_version != SCHEMA_VERSION or new_version != SCHEMA_VERSION:
        return [
            ComparisonItem(
                benchmark=name,
                kind="skipped-version",
                note=(
                    f"schema versions old={old_version!r} new={new_version!r} "
                    f"(comparator speaks {SCHEMA_VERSION}); pair skipped"
                ),
            )
        ]
    old_metrics = old.get("metrics") or {}
    new_metrics = new.get("metrics") or {}
    for metric_name in sorted(old_metrics):
        old_entry = old_metrics[metric_name]
        if metric_name not in new_metrics:
            items.append(
                ComparisonItem(
                    benchmark=name,
                    kind="missing-metric",
                    metric=metric_name,
                    unit=str(old_entry.get("unit", "")),
                    old=old_entry.get("value"),
                    note="metric disappeared from the new record",
                )
            )
            continue
        new_entry = new_metrics[metric_name]
        direction = str(new_entry.get("direction", "info"))
        tolerance = new_entry.get("tolerance_pct", default_tolerance_pct)
        old_value = float(old_entry["value"])
        new_value = float(new_entry["value"])
        kind, note = _classify(direction, old_value, new_value, float(tolerance))
        delta = (
            (new_value - old_value) / old_value * 100.0 if old_value else None
        )
        items.append(
            ComparisonItem(
                benchmark=name,
                kind=kind,
                metric=metric_name,
                unit=str(new_entry.get("unit", "")),
                direction=direction,
                old=old_value,
                new=new_value,
                delta_pct=delta,
                tolerance_pct=float(tolerance) if direction in ("higher", "lower") else None,
                note=note,
            )
        )
    for metric_name in sorted(set(new_metrics) - set(old_metrics)):
        items.append(
            ComparisonItem(
                benchmark=name,
                kind="new-metric",
                metric=metric_name,
                new=new_metrics[metric_name].get("value"),
                unit=str(new_metrics[metric_name].get("unit", "")),
            )
        )
    items.extend(check_budgets(new, benchmark=name))
    return items


def compare_sets(
    old: Mapping[str, Mapping[str, Any]],
    new: Mapping[str, Mapping[str, Any]],
    default_tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
) -> ComparisonReport:
    """Compare two loaded record sets into a :class:`ComparisonReport`.

    Every *new* record must be schema-valid (:class:`RecordSetError`
    otherwise — our own bench wrote garbage); invalid or old-version
    *old* records degrade to per-pair skips.
    """
    for name, record in sorted(new.items()):
        problems = validate_record(record)
        if problems:
            raise RecordSetError(
                f"new record {name!r} is schema-invalid: {'; '.join(problems)}"
            )
    report = ComparisonReport()
    for name in sorted(old):
        if name not in new:
            report.items.append(
                ComparisonItem(
                    benchmark=name,
                    kind="missing-benchmark",
                    note="benchmark disappeared from the new set",
                )
            )
            continue
        old_record = old[name]
        if validate_record(old_record):
            report.items.append(
                ComparisonItem(
                    benchmark=name,
                    kind="skipped-version",
                    note="old record predates the schema; pair skipped",
                )
            )
            report.items.extend(check_budgets(new[name], benchmark=name))
            continue
        report.items.extend(
            _compare_pair(name, old_record, new[name], default_tolerance_pct)
        )
    for name in sorted(set(new) - set(old)):
        report.items.append(
            ComparisonItem(benchmark=name, kind="new-benchmark")
        )
        report.items.extend(check_budgets(new[name], benchmark=name))
    return report


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

_KIND_LABELS = {
    "ok": "ok",
    "improvement": "improved",
    "regression": "REGRESSION",
    "budget": "OVER BUDGET",
    "changed": "changed (exact)",
    "missing-metric": "MISSING METRIC",
    "missing-benchmark": "MISSING BENCHMARK",
    "new-metric": "new metric",
    "new-benchmark": "new benchmark",
    "skipped-version": "skipped (schema)",
}


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def render_text(report: ComparisonReport, verbose: bool = False) -> str:
    """Plain-text summary; quiet metrics are folded unless verbose."""
    lines: List[str] = []
    for item in report.items:
        quiet = item.kind in ("ok", "new-metric") and not verbose
        if quiet:
            continue
        delta = f" ({item.delta_pct:+.1f}%)" if item.delta_pct is not None else ""
        metric_part = f".{item.metric}" if item.metric else ""
        lines.append(
            f"{_KIND_LABELS[item.kind]:>18}  {item.benchmark}{metric_part}: "
            f"{_fmt(item.old)} -> {_fmt(item.new)}{delta}"
            + (f"  [{item.note}]" if item.note else "")
        )
    compared = len(report.by_kind("ok", "improvement", "regression", "changed"))
    lines.append(
        f"compared {compared} metrics; "
        f"{len(report.regressions)} gating failure(s), "
        f"{len(report.by_kind('changed'))} exact-value change(s), "
        f"{len(report.by_kind('skipped-version'))} pair(s) skipped"
    )
    return "\n".join(lines)


def render_markdown(report: ComparisonReport, title: str = "Perf trajectory") -> str:
    """Markdown trend report (the ``bench report`` output)."""
    lines = [f"# {title}", ""]
    rows = [
        item
        for item in report.items
        if item.kind in ("ok", "improvement", "regression", "changed", "budget")
    ]
    if rows:
        lines += [
            "| benchmark | metric | old | new | Δ% | band | status |",
            "|---|---|---:|---:|---:|---:|---|",
        ]
        for item in rows:
            delta = f"{item.delta_pct:+.1f}%" if item.delta_pct is not None else "-"
            band = (
                f"±{item.tolerance_pct:g}%" if item.tolerance_pct is not None else "-"
            )
            lines.append(
                f"| {item.benchmark} | {item.metric} ({item.unit}) "
                f"| {_fmt(item.old)} | {_fmt(item.new)} | {delta} | {band} "
                f"| {_KIND_LABELS[item.kind]} |"
            )
        lines.append("")
    events = [
        item
        for item in report.items
        if item.kind
        in ("missing-metric", "missing-benchmark", "new-benchmark", "skipped-version")
    ]
    if events:
        lines.append("## Set-level events")
        lines.append("")
        for item in events:
            metric_part = f".{item.metric}" if item.metric else ""
            lines.append(
                f"- **{_KIND_LABELS[item.kind]}** `{item.benchmark}{metric_part}`"
                + (f" — {item.note}" if item.note else "")
            )
        lines.append("")
    verdict = "no regressions" if report.ok else (
        f"{len(report.regressions)} gating failure(s)"
    )
    lines.append(f"**Verdict:** {verdict}.")
    return "\n".join(lines)
