"""Synthetic world generation.

Builds the populations the paper measured: schools with four cohorts
and churn, alumni back-catalogues, parents, city residents and a large
external pool; applies OSN adoption and the COPPA age-lying model; and
wires a calibrated friendship graph.  The result is a :class:`World`
with an attackable OSN frontend and evaluator-only ground truth.
"""

from .accounts import AccountFactory, AccountIndex
from .activity import ActivityBuilder
from .config import (
    ActivityConfig,
    AdoptionConfig,
    AlumniBehaviorConfig,
    ExternalPoolConfig,
    FamilyConfig,
    FriendshipConfig,
    LyingConfig,
    OsnParamsConfig,
    SchoolConfig,
    StudentBehaviorConfig,
    WorldConfig,
)
from .lying import RegistrationPlan, expected_registered_adult_fraction, plan_registration
from .names import NameSampler
from .population import Person, Population, PopulationBuilder, Role, build_population
from .presets import PRESETS, hs1, hs2, hs3, preset, smoke, tiny
from .calibration import CalibrationReport, CalibrationRow, calibrate
from .export import export_world_json, load_world_export, world_summary
from .records import VoterRecord, VoterRegistry, build_voter_registry
from .world import SchoolGroundTruth, World, build_world

__all__ = [
    "AccountFactory",
    "AccountIndex",
    "ActivityBuilder",
    "ActivityConfig",
    "AdoptionConfig",
    "AlumniBehaviorConfig",
    "CalibrationReport",
    "CalibrationRow",
    "ExternalPoolConfig",
    "FamilyConfig",
    "FriendshipConfig",
    "LyingConfig",
    "NameSampler",
    "OsnParamsConfig",
    "PRESETS",
    "Person",
    "Population",
    "PopulationBuilder",
    "RegistrationPlan",
    "Role",
    "SchoolConfig",
    "SchoolGroundTruth",
    "StudentBehaviorConfig",
    "VoterRecord",
    "VoterRegistry",
    "World",
    "WorldConfig",
    "build_population",
    "calibrate",
    "build_voter_registry",
    "build_world",
    "export_world_json",
    "load_world_export",
    "expected_registered_adult_fraction",
    "hs1",
    "hs2",
    "hs3",
    "plan_registration",
    "preset",
    "smoke",
    "tiny",
    "world_summary",
]
