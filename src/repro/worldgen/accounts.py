"""Turn ground-truth people into OSN accounts.

This stage applies OSN adoption, the age-lying model, per-persona
profile content (which school/year/city people list) and privacy
behaviour (who makes friend lists public, who is searchable, who shares
photos).  The distributions are the calibration surface for the paper's
Table 5 and for the size of the core sets in Table 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.osn.network import School, SocialNetwork
from repro.osn.privacy import Audience, PrivacySettings, ProfileField
from repro.osn.profile import Birthday, ContactInfo, Profile, SchoolAffiliation, WallPost
from repro.osn.user import Account

from .config import WorldConfig
from .lying import RegistrationPlan, plan_registration
from .population import Person, Population, Role


@dataclass
class AccountIndex:
    """Mapping between ground-truth people and their OSN accounts."""

    person_to_user: Dict[int, int] = field(default_factory=dict)
    user_to_person: Dict[int, int] = field(default_factory=dict)

    def user_for(self, person_id: int) -> Optional[int]:
        return self.person_to_user.get(person_id)

    def person_for(self, user_id: int) -> Optional[int]:
        return self.user_to_person.get(user_id)

    def add(self, person_id: int, user_id: int) -> None:
        self.person_to_user[person_id] = user_id
        self.user_to_person[user_id] = person_id

    def __len__(self) -> int:
        return len(self.person_to_user)


class AccountFactory:
    """Creates accounts (with profiles and settings) for a population."""

    def __init__(
        self,
        config: WorldConfig,
        population: Population,
        network: SocialNetwork,
        schools: List[School],
        rng: random.Random,
        noise_schools: Optional[List[School]] = None,
    ) -> None:
        self.config = config
        self.population = population
        self.network = network
        self.schools = schools
        self.noise_schools = noise_schools or []
        self.rng = rng
        self.index = AccountIndex()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def build_all(self) -> AccountIndex:
        for person in self.population.people:
            if not self._adopts(person):
                continue
            plan = plan_registration(
                person, self.config.lying, self.config.observation_year, self.rng
            )
            if plan is None:
                continue
            self._create_account(person, plan)
        return self.index

    def _adopts(self, person: Person) -> bool:
        adoption = self.config.adoption
        p = {
            Role.STUDENT: adoption.p_student,
            Role.FORMER_STUDENT: adoption.p_former_student,
            Role.ALUMNUS: adoption.p_alumnus,
            Role.PARENT: 1.0,  # parents were only generated if on the OSN
            Role.CITY_ADULT: 0.8,
            Role.EXTERNAL: 1.0,
        }[person.role]
        return self.rng.random() < p

    # ------------------------------------------------------------------
    # Account creation
    # ------------------------------------------------------------------
    def _create_account(self, person: Person, plan: RegistrationPlan) -> Account:
        registered_adult_now = (
            plan.registered_age_at(self.config.observation_year)
            >= self.network.policy.adult_age
        )
        profile, settings = self._profile_and_settings(person, registered_adult_now)
        real_year = int(person.birth_year_fraction)
        account = self.network.register_account(
            profile=profile,
            registered_birthday=plan.registered_birthday,
            real_birthday=Birthday(real_year, person.birth_year_fraction - real_year),
            settings=settings,
            person_id=person.person_id,
            created_at_year=plan.creation_year,
            enforce_minimum_age=self.config.enforce_minimum_age,
        )
        self.index.add(person.person_id, account.user_id)
        return account

    # ------------------------------------------------------------------
    # Persona dispatch
    # ------------------------------------------------------------------
    def _profile_and_settings(
        self, person: Person, registered_adult: bool
    ) -> Tuple[Profile, PrivacySettings]:
        builders = {
            Role.STUDENT: self._student,
            Role.FORMER_STUDENT: self._former_student,
            Role.ALUMNUS: self._alumnus,
            Role.PARENT: self._parent,
            Role.CITY_ADULT: self._city_adult,
            Role.EXTERNAL: self._external,
        }
        return builders[person.role](person, registered_adult)

    def _school_for(self, person: Person) -> School:
        assert person.school_index is not None
        return self.schools[person.school_index]

    def _base_profile(self, person: Person) -> Profile:
        return Profile(name=person.name, gender=person.gender)

    @staticmethod
    def _skewed_count(rng: random.Random, mean: float) -> int:
        """A right-skewed non-negative count with the given mean."""
        if mean <= 0:
            return 0
        return int(rng.expovariate(1.0 / mean))

    # ------------------------------------------------------------------
    # Students
    # ------------------------------------------------------------------
    def _student(self, person: Person, registered_adult: bool) -> Tuple[Profile, PrivacySettings]:
        cfg = self.config.students
        school = self._school_for(person)
        profile = self._base_profile(person)

        if self.rng.random() < cfg.p_list_school:
            year = (
                person.cohort_year
                if self.rng.random() < cfg.p_list_grad_year
                else None
            )
            profile.high_schools = (
                SchoolAffiliation(school.school_id, school.name, year),
            )
        if self.rng.random() < cfg.p_current_city:
            profile.current_city = school.city
        if self.rng.random() < cfg.p_network_listed:
            profile.networks = (school.name,)
        profile.birthday = Birthday(int(person.birth_year_fraction))

        if registered_adult:
            return self._adult_registered_student(profile, cfg)
        return self._minor_registered_student(profile, cfg)

    def _adult_registered_student(self, profile, cfg) -> Tuple[Profile, PrivacySettings]:
        rng = self.rng
        profile.photo_count = self._skewed_count(rng, cfg.adult_photo_mean)
        if rng.random() < cfg.p_adult_relationship:
            profile.relationship_status = rng.choice(("Single", "In a relationship"))
        if rng.random() < cfg.p_adult_interested_in:
            profile.interested_in = rng.choice(("Men", "Women"))
        settings = PrivacySettings.facebook_adult_default_2012()
        overrides = {}
        overrides[ProfileField.FRIEND_LIST] = (
            Audience.PUBLIC
            if rng.random() < cfg.p_adult_friend_list_public
            else Audience.FRIENDS
        )
        overrides[ProfileField.BIRTHDAY] = (
            Audience.PUBLIC
            if rng.random() < cfg.p_adult_birthday_public
            else Audience.FRIENDS
        )
        overrides[ProfileField.WALL] = (
            Audience.PUBLIC
            if rng.random() < self.config.activity.p_wall_public
            else Audience.FRIENDS
        )
        settings = settings.with_fields(overrides)
        settings = settings.__class__(
            audiences=settings.audiences,
            default=settings.default,
            public_search=rng.random() < cfg.p_adult_public_search,
            message_audience=(
                Audience.PUBLIC
                if rng.random() < cfg.p_adult_message_public
                else Audience.FRIENDS
            ),
        )
        return profile, settings

    def _minor_registered_student(self, profile, cfg) -> Tuple[Profile, PrivacySettings]:
        rng = self.rng
        profile.photo_count = self._skewed_count(rng, cfg.minor_photo_mean)
        settings = PrivacySettings.facebook_minor_default_2012()
        if rng.random() < cfg.p_minor_friend_list_friends_only:
            settings = settings.with_field(ProfileField.FRIEND_LIST, Audience.FRIENDS)
        return profile, settings

    # ------------------------------------------------------------------
    # Former students (transferred out; prime false-positive material)
    # ------------------------------------------------------------------
    def _former_student(
        self, person: Person, registered_adult: bool
    ) -> Tuple[Profile, PrivacySettings]:
        profile, settings = self._student(person, registered_adult)
        # They live elsewhere now; about half say so on their profile,
        # which is what the Section-4.4 current-city filter rule catches.
        if self.rng.random() < 0.55:
            profile.current_city = person.city
        else:
            profile.current_city = None
        return profile, settings

    # ------------------------------------------------------------------
    # Alumni
    # ------------------------------------------------------------------
    def _alumnus(self, person: Person, registered_adult: bool) -> Tuple[Profile, PrivacySettings]:
        cfg = self.config.alumni
        rng = self.rng
        school = self._school_for(person)
        profile = self._base_profile(person)
        if rng.random() < cfg.p_list_school:
            year = person.cohort_year if rng.random() < cfg.p_list_grad_year else None
            profile.high_schools = (
                SchoolAffiliation(school.school_id, school.name, year),
            )
        moved = rng.random() < cfg.p_moved_away
        if rng.random() < cfg.p_current_city:
            profile.current_city = "College Park" if moved else school.city
        if rng.random() < cfg.p_graduate_school:
            profile.graduate_school = rng.choice(
                ("State University", "City College", "Tech Institute")
            )
        if rng.random() < cfg.p_employer:
            profile.employer = rng.choice(
                ("Acme Corp", "Initech", "Globex", "Hooli", "Soylent Corp")
            )
        profile.photo_count = self._skewed_count(rng, cfg.photo_mean)
        profile.birthday = Birthday(int(person.birth_year_fraction))

        settings = PrivacySettings.facebook_adult_default_2012()
        settings = settings.with_field(
            ProfileField.FRIEND_LIST,
            Audience.PUBLIC if rng.random() < cfg.p_friend_list_public else Audience.FRIENDS,
        )
        settings = PrivacySettings(
            audiences=settings.audiences,
            default=settings.default,
            public_search=rng.random() < cfg.p_public_search,
            message_audience=Audience.PUBLIC,
        )
        return profile, settings

    # ------------------------------------------------------------------
    # Parents / city adults / externals
    # ------------------------------------------------------------------
    def _parent(self, person: Person, registered_adult: bool) -> Tuple[Profile, PrivacySettings]:
        rng = self.rng
        profile = self._base_profile(person)
        if rng.random() < self.config.family.p_parent_lists_city:
            profile.current_city = person.city
        profile.photo_count = self._skewed_count(rng, 25.0)
        profile.birthday = Birthday(int(person.birth_year_fraction))
        settings = PrivacySettings.facebook_adult_default_2012()
        if rng.random() < 0.4:
            settings = settings.with_field(ProfileField.FRIEND_LIST, Audience.FRIENDS)
        return profile, settings

    def _city_adult(self, person: Person, registered_adult: bool) -> Tuple[Profile, PrivacySettings]:
        rng = self.rng
        profile = self._base_profile(person)
        profile.current_city = person.city
        profile.photo_count = self._skewed_count(rng, 30.0)
        settings = PrivacySettings.facebook_adult_default_2012()
        if rng.random() < 0.35:
            settings = settings.with_field(ProfileField.FRIEND_LIST, Audience.FRIENDS)
        return profile, settings

    def _external(self, person: Person, registered_adult: bool) -> Tuple[Profile, PrivacySettings]:
        cfg = self.config.externals
        rng = self.rng
        profile = self._base_profile(person)
        profile.photo_count = self._skewed_count(rng, 35.0)
        if self.noise_schools and rng.random() < cfg.p_lists_other_school:
            school = rng.choice(self.noise_schools)
            age_now = self.config.observation_year - person.birth_year_fraction
            grad_year = int(self.config.observation_year - age_now + 18.45)
            profile.high_schools = (
                SchoolAffiliation(school.school_id, school.name, grad_year),
            )
        if not registered_adult:
            # A real teenager elsewhere: minor defaults, minimal exposure.
            return profile, PrivacySettings.facebook_minor_default_2012()
        if rng.random() < cfg.p_locked_down_adult:
            # Privacy-conscious adult: indistinguishable from a minor's
            # minimal profile — the Section-7 heuristic cannot tell them
            # apart, which is why its false-positive count explodes.
            settings = PrivacySettings.everything_private()
            return profile, PrivacySettings(
                audiences=settings.audiences,
                default=settings.default,
                public_search=rng.random() < 0.5,
                message_audience=Audience.ONLY_ME,
            )
        if rng.random() < 0.6:
            profile.current_city = person.city
        settings = PrivacySettings.facebook_adult_default_2012()
        settings = settings.with_field(
            ProfileField.FRIEND_LIST,
            Audience.PUBLIC
            if rng.random() < cfg.p_friend_list_public_adult
            else Audience.FRIENDS,
        )
        return profile, settings
