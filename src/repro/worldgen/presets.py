"""Calibrated world presets mirroring the paper's three high schools.

* ``hs1`` — a small private urban school (362 students, high churn,
  complete ground truth in the paper).
* ``hs2`` — a large public suburban school (~1,500 students).
* ``hs3`` — a large public school in a small mid-western city.
* ``tiny`` — a fast, scaled-down world for unit tests.

Calibration targets (orders of magnitude, per the paper's Tables 2, 4
and 5): ~90% of students on the OSN; 30–55% of students registered as
adults; core users ≈ 5% of the school; candidates ≈ one order of
magnitude above school size; ~75–90% of adult-registered students with
public friend lists.
"""

from __future__ import annotations

from dataclasses import replace

from .config import (
    AdoptionConfig,
    ExternalPoolConfig,
    FriendshipConfig,
    LyingConfig,
    OsnParamsConfig,
    SchoolConfig,
    StudentBehaviorConfig,
    WorldConfig,
)


def hs1(seed: int = 101) -> WorldConfig:
    """HS1: small private urban school, ~360 students, 10-20% churn."""
    return WorldConfig(
        seed=seed,
        observation_year=2012.25,
        city_name="Eastport",
        schools=(
            SchoolConfig(
                name="St. Anselm Preparatory School",
                city="Eastport",
                enrollment=362,
                alumni_cohorts=9,
                churn_out_rate=0.35,
                transfer_in_rate=0.10,
            ),
        ),
        lying=LyingConfig(
            p_lie_if_under_13=0.80,
            claim_13_weight=0.24,
            claim_midteen_weight=0.16,
            claim_adult_weight=0.60,
        ),
        students=StudentBehaviorConfig(
            p_list_school=0.32,
            p_adult_friend_list_public=0.73,
            p_adult_public_search=0.71,
            p_adult_message_public=0.89,
            p_adult_relationship=0.15,
            p_adult_interested_in=0.13,
            p_adult_birthday_public=0.09,
            adult_photo_mean=19.0,
        ),
        externals=ExternalPoolConfig(size=12000),
        friendship=FriendshipConfig(
            p_same_cohort=0.55,
            p_adjacent_cohort=0.08,
            student_external_median=280.0,
            alumni_external_median=260.0,
        ),
        osn=OsnParamsConfig(search_result_cap=240),
    )


def hs2(seed: int = 202) -> WorldConfig:
    """HS2: large public suburban school on the East Coast, ~1,500 students."""
    return WorldConfig(
        seed=seed,
        observation_year=2012.45,
        city_name="Maplewood",
        schools=(
            SchoolConfig(
                name="Maplewood Township High School",
                city="Maplewood",
                enrollment=1500,
                alumni_cohorts=8,
                churn_out_rate=0.08,
                transfer_in_rate=0.06,
            ),
        ),
        lying=LyingConfig(
            p_lie_if_under_13=0.88,
            claim_13_weight=0.25,
            claim_midteen_weight=0.15,
            claim_adult_weight=0.60,
        ),
        students=StudentBehaviorConfig(
            p_list_school=0.28,
            p_adult_friend_list_public=0.77,
            p_adult_public_search=0.80,
            p_adult_message_public=0.86,
            p_adult_relationship=0.26,
            p_adult_interested_in=0.20,
            p_adult_birthday_public=0.04,
            adult_photo_mean=51.0,
        ),
        externals=ExternalPoolConfig(size=16000),
        friendship=FriendshipConfig(
            p_same_cohort=0.32,
            p_adjacent_cohort=0.05,
            p_two_cohort_gap=0.015,
            p_three_cohort_gap=0.006,
            student_external_median=260.0,
            alumni_external_median=280.0,
        ),
        adoption=AdoptionConfig(p_student=0.85, p_alumnus=0.60),
        osn=OsnParamsConfig(search_result_cap=420),
    )


def hs3(seed: int = 303) -> WorldConfig:
    """HS3: large public school in a small mid-western city, ~1,500 students."""
    base = hs2(seed)
    return replace(
        base,
        city_name="Cedar Falls",
        schools=(
            SchoolConfig(
                name="Cedar Falls High School",
                city="Cedar Falls",
                enrollment=1500,
                alumni_cohorts=8,
                churn_out_rate=0.07,
                transfer_in_rate=0.05,
            ),
        ),
        lying=LyingConfig(
            p_lie_if_under_13=0.90,
            claim_13_weight=0.34,
            claim_midteen_weight=0.12,
            claim_adult_weight=0.54,
        ),
        students=StudentBehaviorConfig(
            p_list_school=0.26,
            p_adult_friend_list_public=0.87,
            p_adult_public_search=0.86,
            p_adult_message_public=0.91,
            p_adult_relationship=0.34,
            p_adult_interested_in=0.33,
            p_adult_birthday_public=0.06,
            adult_photo_mean=57.0,
        ),
        externals=ExternalPoolConfig(size=13000),
    )


def smoke(seed: int = 11) -> WorldConfig:
    """The ``smoke`` tier: a mid-sized world (~7k accounts).

    Sits between ``tiny`` and the paper schools — big enough that the
    candidate pool, churn and external-degree machinery all exercise
    realistically, small enough for CI smoke runs and the seed tests
    that only need *a* school-shaped world, not a calibrated one.
    """
    return WorldConfig(
        seed=seed,
        observation_year=2012.25,
        city_name="Midvale",
        schools=(
            SchoolConfig(
                name="Midvale High School",
                city="Midvale",
                enrollment=240,
                alumni_cohorts=6,
                churn_out_rate=0.15,
                transfer_in_rate=0.08,
            ),
        ),
        friendship=FriendshipConfig(
            p_same_cohort=0.50,
            p_adjacent_cohort=0.08,
            student_external_median=120.0,
            alumni_external_median=130.0,
        ),
        externals=ExternalPoolConfig(size=6000),
        osn=OsnParamsConfig(search_result_cap=120),
    )


def tiny(seed: int = 7) -> WorldConfig:
    """A fast, small world for unit and property tests."""
    return WorldConfig(
        seed=seed,
        observation_year=2012.25,
        city_name="Smallville",
        schools=(
            SchoolConfig(
                name="Smallville High School",
                city="Smallville",
                enrollment=120,
                alumni_cohorts=5,
                churn_out_rate=0.10,
                transfer_in_rate=0.08,
            ),
        ),
        friendship=FriendshipConfig(
            p_same_cohort=0.45,
            p_adjacent_cohort=0.10,
            student_external_median=60.0,
            alumni_external_median=70.0,
            parent_external_median=20.0,
        ),
        externals=ExternalPoolConfig(size=1500),
        osn=OsnParamsConfig(search_result_cap=48),
    )


PRESETS = {"hs1": hs1, "hs2": hs2, "hs3": hs3, "smoke": smoke, "tiny": tiny}


def preset(name: str, seed: int | None = None) -> WorldConfig:
    """Look up a preset by name, optionally overriding its seed."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; choose from {sorted(PRESETS)}") from None
    return factory() if seed is None else factory(seed)
