"""Interaction activity: wall posts authored by friends.

Runs after friendship wiring.  Every adult-registered student and every
alumnus accumulates wall posts whose authors are sampled from their
friends, skewed toward same-school friends (interaction strength tracks
social closeness, per Wilson et al. and Viswanath et al. — the papers
the study cites as the basis for interaction-graph optimizations).

The posts surface on profile pages whenever the wall is visible to the
viewer, giving the attacker the observable interaction graph that
``repro.core.interaction`` exploits.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set

from repro.osn.network import SocialNetwork
from repro.osn.profile import WallPost

from .accounts import AccountIndex
from .config import WorldConfig
from .population import Population, Role


class ActivityBuilder:
    """Populates wall posts for accounts that have friends."""

    def __init__(
        self,
        config: WorldConfig,
        population: Population,
        network: SocialNetwork,
        index: AccountIndex,
        rng: random.Random,
    ) -> None:
        self.config = config
        self.population = population
        self.network = network
        self.index = index
        self.rng = rng

    def build(self) -> int:
        """Generate wall posts; returns the number created."""
        school_people = self._school_affiliated_uids()
        created = 0
        now = self.network.clock.now_year
        for role in (Role.STUDENT, Role.FORMER_STUDENT, Role.ALUMNUS):
            for pid in self.population.ids_with_role(role):
                uid = self.index.user_for(pid)
                if uid is None:
                    continue
                account = self.network.users[uid]
                if account.is_registered_minor(now):
                    continue  # minors' walls are never stranger-visible anyway
                created += self._fill_wall(uid, school_people)
        return created

    def _school_affiliated_uids(self) -> Set[int]:
        uids: Set[int] = set()
        for role in (Role.STUDENT, Role.FORMER_STUDENT, Role.ALUMNUS):
            for pid in self.population.ids_with_role(role):
                uid = self.index.user_for(pid)
                if uid is not None:
                    uids.add(uid)
        return uids

    def _fill_wall(self, uid: int, school_people: Set[int]) -> int:
        cfg = self.config.activity
        friends = self.network.graph.neighbors_list(uid)
        if not friends:
            return 0
        count = int(self.rng.expovariate(1.0 / cfg.wall_post_mean)) if cfg.wall_post_mean > 0 else 0
        if count == 0:
            return 0
        weights = [
            cfg.school_author_weight if friend in school_people else 1.0
            for friend in friends
        ]
        authors = self.rng.choices(friends, weights=weights, k=count)
        account = self.network.users[uid]
        account.profile.wall_posts = [
            WallPost(author_id=author, text=f"wall post {i}")
            for i, author in enumerate(authors)
        ]
        return count
