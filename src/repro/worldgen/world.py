"""World assembly: population + accounts + friendships + ground truth.

``build_world`` turns a :class:`~repro.worldgen.config.WorldConfig` into
a ready-to-attack :class:`World`: a fully wired OSN behind an HTML
frontend, plus the :class:`SchoolGroundTruth` an evaluator needs (the
paper obtained HS1's equivalent through a confidential channel).

The ground truth is *never* consulted by the attack itself — only by
``repro.core.evaluation`` after the fact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.osn.clock import SimClock
from repro.osn.frontend import HtmlFrontend
from repro.osn.network import School, SocialNetwork
from repro.osn.policy import policy_by_name
from repro.osn.privacy import PrivacySettings
from repro.osn.profile import Birthday, Name, Profile
from repro.osn.ratelimit import RateLimitConfig

from .accounts import AccountFactory, AccountIndex
from .activity import ActivityBuilder
from .config import WorldConfig
from .friendship import FriendshipBuilder
from .population import Population, PopulationBuilder, Role


@dataclass
class SchoolGroundTruth:
    """Everything the evaluator knows about one school's true students.

    Mirrors the confidential student lists the paper used for HS1:
    current students segmented by graduation year, their account ids,
    and derived per-account classifications (registered minors, students
    registered as adults, minimal-profile students).
    """

    school: School
    #: grad year -> person ids of all current students (incl. no-account)
    students_by_year: Dict[int, List[int]] = field(default_factory=dict)
    #: grad year -> user ids of current students *with accounts* (the set M)
    student_uids_by_year: Dict[int, List[int]] = field(default_factory=dict)
    former_student_uids: Set[int] = field(default_factory=set)
    alumni_uids: Set[int] = field(default_factory=set)

    @property
    def all_student_uids(self) -> Set[int]:
        return {uid for uids in self.student_uids_by_year.values() for uid in uids}

    @property
    def on_osn_count(self) -> int:
        """|M|: current students with accounts (325 for the paper's HS1)."""
        return sum(len(uids) for uids in self.student_uids_by_year.values())

    @property
    def enrolled_count(self) -> int:
        return sum(len(pids) for pids in self.students_by_year.values())

    def year_of_uid(self, uid: int) -> Optional[int]:
        for year, uids in self.student_uids_by_year.items():
            if uid in uids:
                return year
        return None


@dataclass
class World:
    """A complete, attackable synthetic world."""

    config: WorldConfig
    network: SocialNetwork
    frontend: HtmlFrontend
    population: Population
    account_index: AccountIndex
    schools: List[School]
    ground_truths: List[SchoolGroundTruth]
    rng: random.Random

    def ground_truth(self, school_index: int = 0) -> SchoolGroundTruth:
        return self.ground_truths[school_index]

    def school(self, school_index: int = 0) -> School:
        return self.schools[school_index]

    @property
    def clock(self) -> SimClock:
        """The simulation clock — harness plumbing, not ground truth.

        Callers that only need the current date (the CLI, telemetry)
        should use this instead of reaching through ``world.network``,
        which holds the simulator's private state.
        """
        return self.network.clock

    @property
    def current_year(self) -> int:
        """Current simulated year, via :attr:`clock`."""
        return self.clock.current_year

    def create_attacker_accounts(self, count: int) -> List[int]:
        """Register ``count`` fake adult accounts for the third party.

        These mimic the paper's crawl accounts: plausible adult profiles
        with no friends, so they are strangers to every target.
        """
        uids = []
        for i in range(count):
            account = self.network.register_account(
                profile=Profile(name=Name("Crawl", f"Account{i}")),
                registered_birthday=Birthday(1985),
                settings=PrivacySettings.everything_private(),
                is_fake=True,
                enforce_minimum_age=False,
            )
            uids.append(account.user_id)
        return uids

    # ------------------------------------------------------------------
    # Derived classifications the analysis tables need
    # ------------------------------------------------------------------
    def registered_minor_students(self, school_index: int = 0) -> Set[int]:
        truth = self.ground_truth(school_index)
        return {
            uid
            for uid in truth.all_student_uids
            if self.network.is_registered_minor(uid)
        }

    def adult_registered_students(self, school_index: int = 0) -> Set[int]:
        truth = self.ground_truth(school_index)
        return {
            uid
            for uid in truth.all_student_uids
            if not self.network.is_registered_minor(uid)
        }

    def minimal_profile_students(self, school_index: int = 0) -> Set[int]:
        """Students whose *stranger* view is minimal (Section 7.2 uses this)."""
        truth = self.ground_truth(school_index)
        return {
            uid
            for uid in truth.all_student_uids
            if self.network.view_profile(None, uid).is_minimal()
        }


def build_world(config: WorldConfig) -> World:
    """Generate a complete world from a config (deterministic per seed)."""
    config.validate()
    rng = random.Random(config.seed)
    clock = SimClock(now_year=config.observation_year)
    network = SocialNetwork(
        policy=policy_by_name(config.site),
        clock=clock,
        search_result_cap=config.osn.search_result_cap,
        search_page_size=config.osn.search_page_size,
        friends_page_size=config.osn.friends_page_size,
        search_salt=config.seed,
    )
    schools = [
        network.register_school(
            s.name, s.city, s.enrollment_hint if s.enrollment_hint else s.enrollment
        )
        for s in config.schools
    ]

    noise_schools = [
        network.register_school(f"{city} High School", city)
        for city in ("Rivertown", "Lakeside", "Fairview")
    ]
    population = PopulationBuilder(config, rng).build()
    index = AccountFactory(
        config, population, network, schools, rng, noise_schools=noise_schools
    ).build_all()
    FriendshipBuilder(config, population, network, index, rng).build()
    ActivityBuilder(config, population, network, index, rng).build()

    ground_truths = [
        _school_ground_truth(schools[i], i, population, index)
        for i in range(len(config.schools))
    ]
    frontend = HtmlFrontend(
        network,
        RateLimitConfig(
            max_requests=config.osn.rate_limit_max_requests,
            window_seconds=config.osn.rate_limit_window_seconds,
        ),
    )
    return World(
        config=config,
        network=network,
        frontend=frontend,
        population=population,
        account_index=index,
        schools=schools,
        ground_truths=ground_truths,
        rng=rng,
    )


def _school_ground_truth(
    school: School, school_index: int, population: Population, index: AccountIndex
) -> SchoolGroundTruth:
    truth = SchoolGroundTruth(school=school)
    for year, pids in population.students_by_school.get(school_index, {}).items():
        truth.students_by_year[year] = list(pids)
        truth.student_uids_by_year[year] = [
            uid for pid in pids if (uid := index.user_for(pid)) is not None
        ]
    truth.former_student_uids = {
        uid
        for pid in population.former_by_school.get(school_index, [])
        if (uid := index.user_for(pid)) is not None
    }
    truth.alumni_uids = {
        uid
        for pids in population.alumni_by_school.get(school_index, {}).values()
        for pid in pids
        if (uid := index.user_for(pid)) is not None
    }
    return truth
