"""The COPPA age-lying model: when people join and what age they claim.

This is the causal heart of the paper.  Under COPPA-driven bans, a child
who wants to join before 13 either lies about their birth year or waits.
Liars claim 13, a mid-teen age, or 18+; years later the claimed age has
aged forward with them, so a large fraction of *current high-school
students* read as adults to the OSN — searchable, messageable, and with
adult privacy defaults.

In the without-COPPA counterfactual (``LyingConfig.enabled = False``)
everyone registers with their real birth date at their natural join age
and the under-13 ban is not enforced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.osn.profile import Birthday

from .config import LyingConfig
from .population import Person, Role


@dataclass(frozen=True)
class RegistrationPlan:
    """When an account is created and what birth date it registers."""

    creation_year: float
    registered_birthday: Birthday
    lied: bool

    def registered_age_at(self, year: float) -> float:
        return year - self.registered_birthday.as_year_fraction


def _truthful_birthday(person: Person, rng: random.Random) -> Birthday:
    year = int(person.birth_year_fraction)
    return Birthday(year=year, fraction=person.birth_year_fraction - year)


def _natural_join_year(
    person: Person, config: LyingConfig, observation_year: float, rng: random.Random
) -> float:
    """When this person would naturally have wanted an account.

    School-aged people want to join in the tween years; people who were
    already past that when the site launched joined some years after
    launch instead.
    """
    join_age = rng.uniform(*config.join_age_range)
    natural = person.birth_year_fraction + join_age
    if natural < config.earliest_creation_year:
        natural = config.earliest_creation_year + rng.uniform(0.0, 5.0)
    return min(natural, observation_year - 0.05)


def _claimed_age(config: LyingConfig, rng: random.Random) -> float:
    """The age a lying child claims at sign-up."""
    w13, wmid, wadult = config.claim_weights()
    roll = rng.random()
    if roll < w13:
        return 13.0 + rng.uniform(0.0, 0.5)
    if roll < w13 + wmid:
        return rng.uniform(*config.midteen_claim_range)
    return rng.uniform(*config.adult_claim_range)


def plan_registration(
    person: Person,
    config: LyingConfig,
    observation_year: float,
    rng: random.Random,
) -> Optional[RegistrationPlan]:
    """Decide creation year and registered birth date for one person.

    Returns ``None`` when the person cannot have an account yet (too
    young to register truthfully and chose not to lie, with the deferred
    date still in the future).
    """
    join_year = _natural_join_year(person, config, observation_year, rng)
    age_at_join = join_year - person.birth_year_fraction

    if not config.enabled:
        # Without-COPPA world: truthful registration at the natural age.
        return RegistrationPlan(
            creation_year=join_year,
            registered_birthday=_truthful_birthday(person, rng),
            lied=False,
        )

    if age_at_join >= 13.0:
        return RegistrationPlan(
            creation_year=join_year,
            registered_birthday=_truthful_birthday(person, rng),
            lied=False,
        )

    if rng.random() < config.p_lie_if_under_13:
        claimed = _claimed_age(config, rng)
        registered = join_year - claimed
        year = int(registered)
        return RegistrationPlan(
            creation_year=join_year,
            registered_birthday=Birthday(year=year, fraction=registered - year),
            lied=True,
        )

    # Waits until turning 13, then registers truthfully.
    deferred = person.birth_year_fraction + 13.0 + rng.uniform(0.0, 0.3)
    if deferred >= observation_year:
        return None
    return RegistrationPlan(
        creation_year=deferred,
        registered_birthday=_truthful_birthday(person, rng),
        lied=False,
    )


def expected_registered_adult_fraction(
    config: LyingConfig, real_age_now: float, years_since_join: float
) -> float:
    """Analytic helper: P(registered adult now) for a student.

    Used by calibration tests to sanity-check the lying model: a student
    who joined ``years_since_join`` ago claiming age ``c`` reads as
    ``c + years_since_join`` today.  The probability mass above 18 is
    accumulated over the claim buckets.
    """
    if not config.enabled:
        return 1.0 if real_age_now >= 18.0 else 0.0
    w13, wmid, wadult = config.claim_weights()
    mass = 0.0
    if 13.25 + years_since_join >= 18.0:
        mass += w13
    mid_lo, mid_hi = config.midteen_claim_range
    mid_mid = (mid_lo + mid_hi) / 2.0
    if mid_mid + years_since_join >= 18.0:
        mass += wmid
    mass += wadult
    truthful_adult = 1.0 if real_age_now >= 18.0 else 0.0
    p_lied = config.p_lie_if_under_13
    return p_lied * mass + (1.0 - p_lied) * truthful_adult
