"""Ground-truth population generation: the people behind the accounts.

The generator produces :class:`Person` records for every role the study
touches:

* current students of each school (four cohorts, including recent
  transfer-ins),
* former students who churned out (the paper traces about half of the
  HS1 false positives to these),
* alumni of past graduating classes (the bulk of every seed set),
* parents (households share surnames; a parent in a friend list lets a
  data broker pin a street address, Section 2),
* unaffiliated city adults and a large external pool (the dilution in
  the candidate set).

People are *not* accounts: OSN adoption, age lying, privacy settings
and friendships are layered on later.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.osn.clock import school_class_year
from repro.osn.profile import Gender, Name

from .config import SchoolConfig, WorldConfig
from .names import NameSampler

#: Expected age (in years) of a student at graduation, before jitter.
GRADUATION_AGE = 18.45

#: Street names for synthetic home addresses (the data-broker linkage
#: of Section 2 matches voter records against these).
STREET_NAMES = (
    "Maple", "Oak", "Cedar", "Elm", "Pine", "Washington", "Lake",
    "Hill", "Park", "Main", "Walnut", "Spring", "North", "Ridge",
    "Church", "Willow", "Mill", "Sunset", "Railroad", "Jackson",
)


class Role(enum.Enum):
    STUDENT = "student"
    FORMER_STUDENT = "former_student"
    ALUMNUS = "alumnus"
    PARENT = "parent"
    CITY_ADULT = "city_adult"
    EXTERNAL = "external"


@dataclass
class Person:
    """One ground-truth individual.

    ``cohort_year`` is the (actual or would-have-been) graduation year
    for students, former students and alumni.  ``tenure_years`` is how
    long a current student has attended so far; ``left_years_ago`` when
    a former student departed.  ``household_id`` ties students to their
    parents.
    """

    person_id: int
    name: Name
    gender: Gender
    birth_year_fraction: float
    role: Role
    city: str
    school_index: Optional[int] = None  # index into WorldConfig.schools
    cohort_year: Optional[int] = None
    tenure_years: float = 0.0
    left_years_ago: float = 0.0
    household_id: Optional[int] = None
    street_address: Optional[str] = None

    def real_age(self, now_year: float) -> float:
        return now_year - self.birth_year_fraction

    @property
    def is_school_affiliated(self) -> bool:
        return self.role in (Role.STUDENT, Role.FORMER_STUDENT, Role.ALUMNUS)


@dataclass
class Population:
    """All generated people, with role-indexed views for later stages."""

    people: List[Person] = field(default_factory=list)
    by_role: Dict[Role, List[int]] = field(default_factory=dict)
    #: per school index: cohort year -> person ids of *current* students
    students_by_school: Dict[int, Dict[int, List[int]]] = field(default_factory=dict)
    former_by_school: Dict[int, List[int]] = field(default_factory=dict)
    alumni_by_school: Dict[int, Dict[int, List[int]]] = field(default_factory=dict)
    #: household id -> (student person ids, parent person ids)
    households: Dict[int, Tuple[List[int], List[int]]] = field(default_factory=dict)

    def person(self, person_id: int) -> Person:
        return self.people[person_id]

    def ids_with_role(self, role: Role) -> List[int]:
        return self.by_role.get(role, [])

    def add(self, person: Person) -> None:
        assert person.person_id == len(self.people)
        self.people.append(person)
        self.by_role.setdefault(person.role, []).append(person.person_id)

    def __len__(self) -> int:
        return len(self.people)


class PopulationBuilder:
    """Generates a :class:`Population` from a :class:`WorldConfig`."""

    def __init__(self, config: WorldConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng
        self.names = NameSampler(rng)
        self.population = Population()
        self._next_household = 0

    def _street_address(self) -> str:
        street = self.rng.choice(STREET_NAMES)
        suffix = self.rng.choice(("St", "Ave", "Rd", "Ln"))
        return f"{self.rng.randint(1, 999)} {street} {suffix}"

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def build(self) -> Population:
        for school_index, school in enumerate(self.config.schools):
            self._build_school(school_index, school)
        self._build_city_adults()
        self._build_externals()
        return self.population

    # ------------------------------------------------------------------
    # Schools
    # ------------------------------------------------------------------
    def _grad_year_cohorts(self, school: SchoolConfig) -> List[int]:
        """Graduation years of current cohorts, earliest first.

        At observation time 2012.25 the current classes graduate in
        2012..2015 (the school year runs into June); in fall 2011 the
        same classes are current (school years straddle new year).
        """
        first = school_class_year(self.config.observation_year)
        return [first + i for i in range(school.cohorts)]

    def _birth_year_for_cohort(self, cohort_year: int) -> float:
        """A birth instant consistent with graduating in ``cohort_year``."""
        return cohort_year - GRADUATION_AGE + self.rng.uniform(0.0, 1.0)

    def _build_school(self, school_index: int, school: SchoolConfig) -> None:
        self._build_current_students(school_index, school)
        self._build_former_students(school_index, school)
        self._build_alumni(school_index, school)

    def _build_current_students(self, school_index: int, school: SchoolConfig) -> None:
        cohorts = self._grad_year_cohorts(school)
        students = self.population.students_by_school.setdefault(school_index, {})
        for cohort_year in cohorts:
            members: List[int] = []
            years_attended_max = school.cohorts - (cohort_year - cohorts[0])
            for _ in range(school.cohort_size):
                surname = self.names.family_surname()
                gender = self.names.gender()
                name = Name(self.names.first_name(gender), surname)
                recent_arrival = self.rng.random() < school.transfer_in_rate
                if recent_arrival:
                    tenure = self.rng.uniform(0.1, 1.0)
                else:
                    tenure = self.rng.uniform(
                        max(0.5, years_attended_max - 1.0), float(years_attended_max)
                    )
                person = Person(
                    person_id=len(self.population),
                    name=name,
                    gender=gender,
                    birth_year_fraction=self._birth_year_for_cohort(cohort_year),
                    role=Role.STUDENT,
                    city=school.city,
                    school_index=school_index,
                    cohort_year=cohort_year,
                    tenure_years=tenure,
                )
                self.population.add(person)
                members.append(person.person_id)
                self._maybe_build_family(person, surname, school.city)
            students[cohort_year] = members

    def _maybe_build_family(self, student: Person, surname: str, city: str) -> None:
        """Attach 1–2 parents to a student's household (probabilistically)."""
        family = self.config.family
        if self.rng.random() >= family.p_parent_on_osn:
            return
        household = self._next_household
        self._next_household += 1
        student.household_id = household
        address = self._street_address()
        student.street_address = address
        parents: List[int] = []
        n_parents = 2 if self.rng.random() < family.p_two_parents else 1
        for _ in range(n_parents):
            gender = self.names.gender()
            parent = Person(
                person_id=len(self.population),
                name=Name(self.names.first_name(gender), surname),
                gender=gender,
                birth_year_fraction=student.birth_year_fraction
                - self.rng.uniform(22.0, 38.0),
                role=Role.PARENT,
                city=city,
                household_id=household,
                street_address=address,
            )
            self.population.add(parent)
            parents.append(parent.person_id)
        self.population.households[household] = ([student.person_id], parents)

    def _build_former_students(self, school_index: int, school: SchoolConfig) -> None:
        """Students who attended recently but transferred out.

        They keep in-school friendships made during their tenure, often
        still list the school (sometimes with a future class year), and
        usually live in another city now — the profile signature the
        Section-4.4 filter rules target.
        """
        cohorts = self._grad_year_cohorts(school)
        count = int(school.enrollment * school.churn_out_rate)
        former = self.population.former_by_school.setdefault(school_index, [])
        for _ in range(count):
            cohort_year = self.rng.choice(cohorts)
            gender = self.names.gender()
            left_years_ago = self.rng.uniform(0.3, 2.5)
            person = Person(
                person_id=len(self.population),
                name=Name(self.names.first_name(gender), self.names.last_name()),
                gender=gender,
                birth_year_fraction=self._birth_year_for_cohort(cohort_year),
                role=Role.FORMER_STUDENT,
                city=f"{school.city} Heights" if self.rng.random() < 0.5 else "Rivertown",
                school_index=school_index,
                cohort_year=cohort_year,
                tenure_years=self.rng.uniform(0.5, 2.5),
                left_years_ago=left_years_ago,
            )
            self.population.add(person)
            former.append(person.person_id)

    def _build_alumni(self, school_index: int, school: SchoolConfig) -> None:
        """Past graduating classes, one cohort per year back."""
        current_first = school_class_year(self.config.observation_year)
        alumni = self.population.alumni_by_school.setdefault(school_index, {})
        for back in range(1, school.alumni_cohorts + 1):
            cohort_year = current_first - back
            members: List[int] = []
            for _ in range(school.cohort_size):
                gender = self.names.gender()
                person = Person(
                    person_id=len(self.population),
                    name=Name(self.names.first_name(gender), self.names.last_name()),
                    gender=gender,
                    birth_year_fraction=self._birth_year_for_cohort(cohort_year),
                    role=Role.ALUMNUS,
                    city=school.city,
                    school_index=school_index,
                    cohort_year=cohort_year,
                    tenure_years=float(school.cohorts),
                )
                self.population.add(person)
                members.append(person.person_id)
            alumni[cohort_year] = members

    # ------------------------------------------------------------------
    # Background population
    # ------------------------------------------------------------------
    def _build_city_adults(self) -> None:
        """Unaffiliated adults living in the city (sized off school totals)."""
        total_enrollment = sum(s.enrollment for s in self.config.schools)
        count = max(50, total_enrollment // 2)
        for _ in range(count):
            gender = self.names.gender()
            person = Person(
                person_id=len(self.population),
                name=Name(self.names.first_name(gender), self.names.last_name()),
                gender=gender,
                birth_year_fraction=self.rng.uniform(1950.0, 1990.0),
                role=Role.CITY_ADULT,
                city=self.config.city_name,
                street_address=self._street_address(),
            )
            self.population.add(person)

    def _build_externals(self) -> None:
        """The external pool: mostly young adults scattered elsewhere.

        Skewed young because teenagers befriend other teenagers; a slice
        are real minors (registered minors in the with-COPPA world),
        which supplies the minimal-profile noise the Section-7 analysis
        runs into.
        """
        cities = ("Rivertown", "Lakeside", "Fairview", "Oakdale", "Milton")
        for _ in range(self.config.externals.size):
            gender = self.names.gender()
            if self.rng.random() < self.config.externals.p_registered_minor:
                birth = self.config.observation_year - self.rng.uniform(13.5, 17.5)
            else:
                birth = self.config.observation_year - self.rng.uniform(18.0, 45.0)
            person = Person(
                person_id=len(self.population),
                name=Name(self.names.first_name(gender), self.names.last_name()),
                gender=gender,
                birth_year_fraction=birth,
                role=Role.EXTERNAL,
                city=self.rng.choice(cities),
            )
            self.population.add(person)


def build_population(config: WorldConfig, rng: Optional[random.Random] = None) -> Population:
    """Convenience wrapper: generate the full population for ``config``."""
    config.validate()
    return PopulationBuilder(config, rng or random.Random(config.seed)).build()
