"""World/dataset export.

The paper's authors could not release their data ("because of the
sensitive nature of the information we gathered ... we will not be
making our data sets public"), publishing only aggregates.  Our worlds
are synthetic, so both modes exist:

* :func:`world_summary` — the aggregate view the paper could publish:
  population counts, lying statistics, privacy-setting distributions,
  degree statistics;
* :func:`export_world_json` — a full (synthetic, hence safe) dump of
  people, accounts and edges for reuse by other tools, or just the
  aggregates when ``include_individuals=False``.
"""

from __future__ import annotations

import json
from statistics import mean
from typing import Any, Dict, List

from repro.osn.privacy import Audience, ProfileField

from .population import Role
from .world import World


def world_summary(world: World) -> Dict[str, Any]:
    """Aggregate statistics (everything the paper-style ethics allow)."""
    net = world.network
    now = net.clock.now_year
    population = world.population

    role_counts = {
        role.value: len(population.ids_with_role(role)) for role in Role
    }
    accounts = [a for a in net.users.values() if not a.is_fake]
    liars = [a for a in accounts if a.lied_about_age()]
    registered_minors = [a for a in accounts if a.is_registered_minor(now)]

    student_stats: List[Dict[str, Any]] = []
    for index, truth in enumerate(world.ground_truths):
        adult_reg = world.adult_registered_students(index)
        minimal = world.minimal_profile_students(index)
        student_stats.append(
            {
                "school": truth.school.name,
                "enrolled": truth.enrolled_count,
                "on_osn": truth.on_osn_count,
                "registered_adult_students": len(adult_reg),
                "minimal_profile_students": len(minimal),
                "students_by_year": {
                    str(year): len(uids)
                    for year, uids in truth.student_uids_by_year.items()
                },
            }
        )

    degrees = [net.graph.degree(uid) for uid in net.users if not net.users[uid].is_fake]
    public_friend_lists = sum(
        1
        for a in accounts
        if a.settings.audience_for(ProfileField.FRIEND_LIST) is Audience.PUBLIC
    )
    return {
        "seed": world.config.seed,
        "observation_year": world.config.observation_year,
        "site": world.config.site,
        "population_by_role": role_counts,
        "accounts": len(accounts),
        "age_liars": len(liars),
        "age_liar_fraction": len(liars) / len(accounts) if accounts else 0.0,
        "registered_minors": len(registered_minors),
        "edges": net.graph.edge_count(),
        "mean_degree": mean(degrees) if degrees else 0.0,
        "public_friend_list_fraction": (
            public_friend_lists / len(accounts) if accounts else 0.0
        ),
        "schools": student_stats,
    }


def export_world_json(
    world: World, path: str, include_individuals: bool = False
) -> Dict[str, Any]:
    """Write a world snapshot to ``path``; returns what was written.

    With ``include_individuals`` the dump adds per-account records
    (names, real and registered birth years, role, school claims) and
    the full edge list — meaningful only because every person is
    synthetic.
    """
    document: Dict[str, Any] = {"summary": world_summary(world)}
    if include_individuals:
        net = world.network
        users = []
        for uid, account in sorted(net.users.items()):
            if account.is_fake:
                continue
            person = (
                world.population.person(account.person_id)
                if account.person_id is not None
                else None
            )
            affiliation = account.profile.primary_high_school()
            users.append(
                {
                    "user_id": uid,
                    "name": account.profile.name.full,
                    "role": person.role.value if person else None,
                    "real_birth_year": account.real_birthday.year,
                    "registered_birth_year": account.registered_birthday.year,
                    "lied": account.lied_about_age(),
                    "school_id": affiliation.school_id if affiliation else None,
                    "graduation_year": (
                        affiliation.graduation_year if affiliation else None
                    ),
                    "degree": net.graph.degree(uid),
                }
            )
        document["users"] = users
        document["edges"] = [[a, b] for a, b in sorted(net.graph.edges())]
    with open(path, "w") as handle:
        json.dump(document, handle)
    return document


def load_world_export(path: str) -> Dict[str, Any]:
    """Read back a snapshot written by :func:`export_world_json`."""
    with open(path) as handle:
        return json.load(handle)
