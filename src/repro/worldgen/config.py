"""Configuration tree for the synthetic world generator.

Every knob that shapes the population — school sizes, churn, the
COPPA age-lying model, privacy-setting behaviour, friendship densities,
OSN adoption — is an explicit dataclass field here, so the presets in
``repro.worldgen.presets`` can be calibrated against the magnitudes the
paper reports (Tables 2, 4 and 5) and the ablation benchmarks can sweep
individual parameters (e.g. the lying rate) while holding the rest
fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class SchoolConfig:
    """One high school and its demographic context.

    ``enrollment`` is the current student-body size (split evenly over
    four cohorts).  ``alumni_cohorts`` controls how many past graduating
    classes exist in the population — alumni dominate the seed sets the
    Find Friends Portal returns.  ``churn_out_rate`` is the fraction of
    each cohort that transferred away (HS1 has 10–20% annual churn,
    Section 5.1); such former students are the main source of
    hard-to-filter false positives.  ``transfer_in_rate`` marks current
    students who arrived recently and therefore have fewer in-school
    friendships.
    """

    name: str
    city: str
    enrollment: int = 360
    cohorts: int = 4
    alumni_cohorts: int = 8
    churn_out_rate: float = 0.12
    transfer_in_rate: float = 0.08
    enrollment_hint: Optional[int] = None  # what "Wikipedia" reports

    @property
    def cohort_size(self) -> int:
        return max(1, self.enrollment // self.cohorts)


@dataclass(frozen=True)
class LyingConfig:
    """The COPPA-circumvention age-lying model (paper, Section 1).

    Children who want to join before age 13 either lie (probability
    ``p_lie_if_under_13``) or wait until they turn 13 and register
    truthfully.  Liars claim an age drawn from three buckets: exactly 13
    (just clearing the ban), a mid-teen age, or 18+ ("may even say he is
    over 18").  The claimed age at creation, plus elapsed time, decides
    whether the OSN sees the student as an adult *today* — the paper's
    entire attack surface.

    ``enabled=False`` models the without-COPPA world of Section 7:
    everyone registers with their real birth date (and the network is
    built with the age ban disabled).
    """

    enabled: bool = True
    p_lie_if_under_13: float = 0.80
    claim_13_weight: float = 0.40
    claim_midteen_weight: float = 0.12
    claim_adult_weight: float = 0.48
    midteen_claim_range: Tuple[float, float] = (14.0, 17.0)
    adult_claim_range: Tuple[float, float] = (18.0, 22.0)
    join_age_range: Tuple[float, float] = (10.5, 13.5)
    earliest_creation_year: float = 2006.0

    def claim_weights(self) -> Tuple[float, float, float]:
        total = self.claim_13_weight + self.claim_midteen_weight + self.claim_adult_weight
        if total <= 0:
            raise ValueError("claim weights must sum to a positive value")
        return (
            self.claim_13_weight / total,
            self.claim_midteen_weight / total,
            self.claim_adult_weight / total,
        )


@dataclass(frozen=True)
class StudentBehaviorConfig:
    """Profile/privacy behaviour of current students on the OSN.

    Split by what the OSN believes: students *registered as adults* get
    adult defaults and behave like the Table-5 column (often public
    friend lists, message button, photos); students *registered as
    minors* are capped by policy no matter what they choose.
    ``p_list_school`` / ``p_list_grad_year`` control how many students
    self-identify — the pipeline that produces the paper's core sets.
    """

    p_list_school: float = 0.55
    p_list_grad_year: float = 0.85
    # --- registered-as-adult students (Table 5 targets) ---
    p_adult_friend_list_public: float = 0.77
    p_adult_public_search: float = 0.80
    p_adult_message_public: float = 0.88
    p_adult_relationship: float = 0.26
    p_adult_interested_in: float = 0.22
    p_adult_birthday_public: float = 0.05
    adult_photo_mean: float = 45.0
    # --- registered-minor students ---
    p_minor_friend_list_friends_only: float = 0.5  # vs. FoF default
    minor_photo_mean: float = 25.0
    # --- shared ---
    p_current_city: float = 0.45
    p_network_listed: float = 0.08  # <10% of registered minors specify network


@dataclass(frozen=True)
class AlumniBehaviorConfig:
    """Behaviour of alumni (the bulk of every seed set)."""

    p_list_school: float = 0.60
    p_list_grad_year: float = 0.90
    p_friend_list_public: float = 0.70
    p_public_search: float = 0.90
    p_graduate_school: float = 0.30
    p_employer: float = 0.35
    p_moved_away: float = 0.45
    p_current_city: float = 0.75
    photo_mean: float = 60.0


@dataclass(frozen=True)
class FamilyConfig:
    """Parents: OSN presence and friending of their children."""

    p_parent_on_osn: float = 0.45
    p_parent_friends_child: float = 0.60
    p_parent_lists_city: float = 0.70
    p_two_parents: float = 0.55


@dataclass(frozen=True)
class ExternalPoolConfig:
    """Non-school users: the dilution that makes candidate sets large.

    ``size`` is the pool students and alumni draw outside friends from;
    its magnitude (relative to per-user external degree) controls how
    many distinct candidates the attack must sift (paper: candidates are
    about an order of magnitude more numerous than the school).
    Composition fractions shape the COPPA-less analysis: minimal-profile
    externals are what floods the Section-7 heuristic with false
    positives.
    """

    size: int = 8000
    p_registered_minor: float = 0.12
    p_locked_down_adult: float = 0.25
    p_friend_list_public_adult: float = 0.70
    #: fraction of external adults who list some *other* high school on
    #: their profile (what the different-high-school filter rule catches)
    p_lists_other_school: float = 0.30


@dataclass(frozen=True)
class FriendshipConfig:
    """Edge-formation probabilities by group pair.

    Within-school densities fall off with cohort gap; student–alumni
    ties decay with graduation-gap years (these power the Section-7
    "natural approach").  External degrees are lognormal — the paper's
    core users average ~400–960 total friends.
    """

    p_same_cohort: float = 0.38
    p_adjacent_cohort: float = 0.07
    p_two_cohort_gap: float = 0.025
    p_three_cohort_gap: float = 0.01
    p_student_alumni_base: float = 0.05
    student_alumni_decay: float = 0.45  # multiplied per extra gap year
    p_alumni_same_cohort: float = 0.12
    p_alumni_adjacent_cohort: float = 0.03
    student_external_median: float = 110.0
    student_external_sigma: float = 0.55
    alumni_external_median: float = 160.0
    alumni_external_sigma: float = 0.55
    parent_external_median: float = 40.0
    parent_external_sigma: float = 0.6
    tenure_overlap_years: float = 0.75  # years of overlap for full edge prob


@dataclass(frozen=True)
class ActivityConfig:
    """Wall-post interaction activity (refs [25,26] of the paper).

    Adult-registered students and alumni accumulate wall posts written
    by their friends; authorship skews toward same-school friends by
    ``school_author_weight``.  Publicly visible walls give the attacker
    an *interaction graph* — the optimization signal the paper lists as
    future work and which ``repro.core.interaction`` implements.
    """

    wall_post_mean: float = 8.0
    p_wall_public: float = 0.40
    school_author_weight: float = 3.0


@dataclass(frozen=True)
class AdoptionConfig:
    """Who has an account at all (Pew: 73% of teens; ~90% here, per HS1)."""

    p_student: float = 0.90
    p_former_student: float = 0.85
    p_alumnus: float = 0.65


@dataclass(frozen=True)
class OsnParamsConfig:
    """Site-side parameters of the simulated OSN."""

    search_result_cap: int = 240
    search_page_size: int = 20
    friends_page_size: int = 20
    rate_limit_max_requests: int = 30
    rate_limit_window_seconds: float = 60.0


@dataclass(frozen=True)
class WorldConfig:
    """The complete recipe for one synthetic world."""

    seed: int = 1
    observation_year: float = 2012.25
    city_name: str = "Springfield"
    schools: Tuple[SchoolConfig, ...] = (SchoolConfig("Central High School", "Springfield"),)
    lying: LyingConfig = field(default_factory=LyingConfig)
    students: StudentBehaviorConfig = field(default_factory=StudentBehaviorConfig)
    alumni: AlumniBehaviorConfig = field(default_factory=AlumniBehaviorConfig)
    family: FamilyConfig = field(default_factory=FamilyConfig)
    externals: ExternalPoolConfig = field(default_factory=ExternalPoolConfig)
    friendship: FriendshipConfig = field(default_factory=FriendshipConfig)
    activity: ActivityConfig = field(default_factory=ActivityConfig)
    adoption: AdoptionConfig = field(default_factory=AdoptionConfig)
    osn: OsnParamsConfig = field(default_factory=OsnParamsConfig)
    site: str = "facebook"
    enforce_minimum_age: bool = True

    def without_coppa(self) -> "WorldConfig":
        """The Section-7 counterfactual: no age ban, no lying.

        Everyone registers with their real birth date and under-13
        registration is permitted; the OSN's *minor privacy policy* is
        unchanged (the paper's assumption (i)/(ii) in Section 7).
        """
        return replace(
            self,
            lying=replace(self.lying, enabled=False),
            enforce_minimum_age=False,
        )

    def with_seed(self, seed: int) -> "WorldConfig":
        return replace(self, seed=seed)

    def validate(self) -> None:
        if not self.schools:
            raise ValueError("a world needs at least one school")
        for school in self.schools:
            if school.enrollment <= 0:
                raise ValueError(f"school {school.name!r} has no students")
            if school.cohorts != 4:
                raise ValueError("the methodology assumes four-year high schools")
        self.lying.claim_weights()  # raises on bad weights
