"""Friendship wiring: who is friends with whom, and why.

The attack's statistical power comes entirely from edge structure:

* dense same-cohort ties make ``|G_i(u)|/|C_i|`` large for true
  students (Eq. 2 of the paper);
* decaying cross-cohort and student–alumni ties both help (more core
  coverage) and hurt (former students and recent alumni score high,
  producing the false positives Section 5.4 dissects);
* large external friend counts dilute the candidate set by an order of
  magnitude (Table 2).

Edges are sampled block-wise (cohort × cohort) with numpy so that
HS2-scale worlds (~1.5k students, ~10k externals, ~1M edges) build in
seconds.  Attendance-window overlap scales down the probability for
transfer students and leavers, so someone who left two years ago shares
few friends with this year's freshmen — exactly the structure the paper
relies on when classifying by year.

numpy is optional (the ``scale`` extra): on a minimal install every
sampler falls back to a scalar pure-python loop driven by its own
seeded ``random.Random``.  Each backend is deterministic for a given
seed, but the two backends draw different edge sets — cross-backend
equality is not promised, and the numpy path never changes a single
draw when the fallback exists (same calls, same order).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

try:
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - minimal-install path
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

from repro.osn.network import SocialNetwork

from .accounts import AccountIndex
from .config import FriendshipConfig, WorldConfig
from .population import Person, Population, Role


@dataclass
class _Member:
    """A school-affiliated account with its attendance window."""

    uid: int
    window_start: float
    window_end: float


def _attendance_window(person: Person, now: float) -> Tuple[float, float]:
    """The (start, end) years this person attended their school."""
    if person.role is Role.STUDENT:
        return now - person.tenure_years, now
    if person.role is Role.FORMER_STUDENT:
        end = now - person.left_years_ago
        return end - person.tenure_years, end
    if person.role is Role.ALUMNUS:
        assert person.cohort_year is not None
        grad = person.cohort_year + 0.45  # graduates in June
        return grad - 4.0, grad
    raise ValueError(f"{person.role} has no attendance window")


class FriendshipBuilder:
    """Samples and installs every friendship edge in a world."""

    def __init__(
        self,
        config: WorldConfig,
        population: Population,
        network: SocialNetwork,
        index: AccountIndex,
        rng: random.Random,
    ) -> None:
        self.config = config
        self.population = population
        self.network = network
        self.index = index
        self.rng = rng
        # Both backends consume the same 64 bits from rng here, so the
        # caller's stream stays aligned whichever backend is active.
        sampler_seed = rng.getrandbits(64)
        self.np_rng = (
            np.random.default_rng(sampler_seed) if HAS_NUMPY else None
        )
        self._py_rng = random.Random(sampler_seed)
        self._edges: set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def build(self) -> int:
        """Create all edges; returns the number installed."""
        for school_index in range(len(self.config.schools)):
            self._build_school_edges(school_index)
        self._build_family_edges()
        self._build_external_edges()
        installed = self.network.graph.bulk_add_edges(self._edges)
        for a, b in self._edges:
            self.network.users[a].friend_ids.add(b)
            self.network.users[b].friend_ids.add(a)
        return installed

    def _add_edge(self, a: int, b: int) -> None:
        if a == b:
            return
        self._edges.add((a, b) if a < b else (b, a))

    # ------------------------------------------------------------------
    # School blocks
    # ------------------------------------------------------------------
    def _school_groups(
        self, school_index: int
    ) -> Tuple[Dict[int, List[_Member]], Dict[int, List[int]]]:
        """(current members by cohort, alumni uids by cohort) with accounts."""
        now = self.config.observation_year
        current: Dict[int, List[_Member]] = {}
        for cohort, person_ids in self.population.students_by_school.get(
            school_index, {}
        ).items():
            members = current.setdefault(cohort, [])
            for pid in person_ids:
                uid = self.index.user_for(pid)
                if uid is not None:
                    start, end = _attendance_window(self.population.person(pid), now)
                    members.append(_Member(uid, start, end))
        for pid in self.population.former_by_school.get(school_index, []):
            person = self.population.person(pid)
            uid = self.index.user_for(pid)
            if uid is not None and person.cohort_year is not None:
                start, end = _attendance_window(person, now)
                current.setdefault(person.cohort_year, []).append(
                    _Member(uid, start, end)
                )
        alumni: Dict[int, List[int]] = {}
        for cohort, person_ids in self.population.alumni_by_school.get(
            school_index, {}
        ).items():
            uids = [
                uid
                for pid in person_ids
                if (uid := self.index.user_for(pid)) is not None
            ]
            if uids:
                alumni[cohort] = uids
        return current, alumni

    def _cohort_gap_p(self, gap: int) -> float:
        cfg = self.config.friendship
        table = (
            cfg.p_same_cohort,
            cfg.p_adjacent_cohort,
            cfg.p_two_cohort_gap,
            cfg.p_three_cohort_gap,
        )
        return table[gap] if gap < len(table) else 0.0

    def _build_school_edges(self, school_index: int) -> None:
        current, alumni = self._school_groups(school_index)
        cfg = self.config.friendship
        cohorts = sorted(current)

        # Current x current (students + former students), window-weighted.
        for i, ya in enumerate(cohorts):
            for yb in cohorts[i:]:
                base_p = self._cohort_gap_p(abs(yb - ya))
                if base_p <= 0:
                    continue
                if ya == yb:
                    self._within_block(current[ya], base_p)
                else:
                    self._cross_block(current[ya], current[yb], base_p)

        # Current x alumni, decaying with graduation gap.
        alumni_cohorts = sorted(alumni)
        for y_student in cohorts:
            members = current[y_student]
            uids_a = [m.uid for m in members]
            for y_alum in alumni_cohorts:
                gap = y_student - y_alum
                if gap < 1 or gap > 6:
                    continue
                p = cfg.p_student_alumni_base * (cfg.student_alumni_decay ** (gap - 1))
                self._sparse_bipartite(uids_a, alumni[y_alum], p)

        # Alumni x alumni: same and adjacent cohorts only.
        for i, ya in enumerate(alumni_cohorts):
            self._sparse_within(alumni[ya], cfg.p_alumni_same_cohort)
            if i + 1 < len(alumni_cohorts) and alumni_cohorts[i + 1] == ya + 1:
                self._sparse_bipartite(
                    alumni[ya], alumni[ya + 1], cfg.p_alumni_adjacent_cohort
                )

    # ------------------------------------------------------------------
    # Vectorised samplers (scalar pure-python fallbacks without numpy)
    # ------------------------------------------------------------------
    def _pair_overlap(self, a: _Member, b: _Member) -> float:
        """Scalar attendance-overlap factor for one pair (fallback path)."""
        horizon = self.config.friendship.tenure_overlap_years
        overlap = min(a.window_end, b.window_end) - max(a.window_start, b.window_start)
        return min(max(overlap / horizon, 0.0), 1.0)

    def _overlap_factor(
        self, members_a: Sequence[_Member], members_b: Sequence[_Member]
    ) -> "np.ndarray":
        """Pairwise attendance-overlap factor in [0, 1] (a × b matrix)."""
        horizon = self.config.friendship.tenure_overlap_years
        start_a = np.array([m.window_start for m in members_a])[:, None]
        end_a = np.array([m.window_end for m in members_a])[:, None]
        start_b = np.array([m.window_start for m in members_b])[None, :]
        end_b = np.array([m.window_end for m in members_b])[None, :]
        overlap = np.minimum(end_a, end_b) - np.maximum(start_a, start_b)
        return np.clip(overlap / horizon, 0.0, 1.0)

    def _within_block(self, members: Sequence[_Member], base_p: float) -> None:
        n = len(members)
        if n < 2:
            return
        if not HAS_NUMPY:
            for i in range(n):
                for j in range(i + 1, n):
                    p = base_p * self._pair_overlap(members[i], members[j])
                    if self._py_rng.random() < p:
                        self._add_edge(members[i].uid, members[j].uid)
            return
        probs = base_p * self._overlap_factor(members, members)
        iu, ju = np.triu_indices(n, k=1)
        hits = self.np_rng.random(iu.shape[0]) < probs[iu, ju]
        for i, j in zip(iu[hits], ju[hits]):
            self._add_edge(members[i].uid, members[j].uid)

    def _cross_block(
        self, members_a: Sequence[_Member], members_b: Sequence[_Member], base_p: float
    ) -> None:
        if not members_a or not members_b:
            return
        if not HAS_NUMPY:
            for a in members_a:
                for b in members_b:
                    if self._py_rng.random() < base_p * self._pair_overlap(a, b):
                        self._add_edge(a.uid, b.uid)
            return
        probs = base_p * self._overlap_factor(members_a, members_b)
        hits = self.np_rng.random(probs.shape) < probs
        for i, j in zip(*np.nonzero(hits)):
            self._add_edge(members_a[i].uid, members_b[j].uid)

    def _binomial_count(self, n_trials: int, p: float) -> int:
        """Fallback binomial draw (normal approximation above 64 trials)."""
        p = min(p, 1.0)
        if n_trials <= 64:
            return sum(self._py_rng.random() < p for _ in range(n_trials))
        mean = n_trials * p
        std = math.sqrt(n_trials * p * (1.0 - p))
        return max(0, min(n_trials, round(self._py_rng.gauss(mean, std))))

    def _sparse_bipartite(self, uids_a: Sequence[int], uids_b: Sequence[int], p: float) -> None:
        """Sample a sparse bipartite edge set without enumerating pairs."""
        na, nb = len(uids_a), len(uids_b)
        if na == 0 or nb == 0 or p <= 0:
            return
        if not HAS_NUMPY:
            for _ in range(self._binomial_count(na * nb, p)):
                self._add_edge(
                    uids_a[self._py_rng.randrange(na)],
                    uids_b[self._py_rng.randrange(nb)],
                )
            return
        count = self.np_rng.binomial(na * nb, min(p, 1.0))
        if count == 0:
            return
        ia = self.np_rng.integers(0, na, size=count)
        ib = self.np_rng.integers(0, nb, size=count)
        for i, j in zip(ia, ib):
            self._add_edge(uids_a[i], uids_b[j])

    def _sparse_within(self, uids: Sequence[int], p: float) -> None:
        n = len(uids)
        if n < 2 or p <= 0:
            return
        if not HAS_NUMPY:
            for _ in range(self._binomial_count(n * (n - 1) // 2, p)):
                i = self._py_rng.randrange(n)
                j = self._py_rng.randrange(n)
                if i != j:
                    self._add_edge(uids[i], uids[j])
            return
        n_pairs = n * (n - 1) // 2
        count = self.np_rng.binomial(n_pairs, min(p, 1.0))
        if count == 0:
            return
        ia = self.np_rng.integers(0, n, size=count)
        ib = self.np_rng.integers(0, n, size=count)
        for i, j in zip(ia, ib):
            if i != j:
                self._add_edge(uids[i], uids[j])

    # ------------------------------------------------------------------
    # Families
    # ------------------------------------------------------------------
    def _build_family_edges(self) -> None:
        p_friend = self.config.family.p_parent_friends_child
        for children, parents in self.population.households.values():
            for child_pid in children:
                child_uid = self.index.user_for(child_pid)
                if child_uid is None:
                    continue
                for parent_pid in parents:
                    parent_uid = self.index.user_for(parent_pid)
                    if parent_uid is not None and self.rng.random() < p_friend:
                        self._add_edge(child_uid, parent_uid)

    # ------------------------------------------------------------------
    # External friends
    # ------------------------------------------------------------------
    def _external_pool(self) -> Sequence[int]:
        uids = [
            uid
            for role in (Role.EXTERNAL, Role.CITY_ADULT)
            for pid in self.population.ids_with_role(role)
            if (uid := self.index.user_for(pid)) is not None
        ]
        if not HAS_NUMPY:
            return uids
        return np.array(uids, dtype=np.int64)

    def _external_degree(self, median: float, sigma: float, size: int) -> Sequence[int]:
        mu = math.log(max(median, 1.0))
        if not HAS_NUMPY:
            return [
                max(1, int(self._py_rng.lognormvariate(mu, sigma)))
                for _ in range(size)
            ]
        return np.maximum(1, self.np_rng.lognormal(mu, sigma, size).astype(int))

    def _build_external_edges(self) -> None:
        cfg = self.config.friendship
        pool = self._external_pool()
        if len(pool) == 0:
            return
        plans = (
            ((Role.STUDENT, Role.FORMER_STUDENT), cfg.student_external_median, cfg.student_external_sigma),
            ((Role.ALUMNUS,), cfg.alumni_external_median, cfg.alumni_external_sigma),
            ((Role.PARENT,), cfg.parent_external_median, cfg.parent_external_sigma),
        )
        for roles, median, sigma in plans:
            uids = [
                uid
                for role in roles
                for pid in self.population.ids_with_role(role)
                if (uid := self.index.user_for(pid)) is not None
            ]
            if not uids:
                continue
            degrees = self._external_degree(median, sigma, len(uids))
            if not HAS_NUMPY:
                for uid, k in zip(uids, degrees):
                    for t in self._py_rng.sample(pool, min(int(k), len(pool))):
                        self._add_edge(uid, t)
                continue
            for uid, k in zip(uids, degrees):
                targets = self.np_rng.choice(pool, size=min(int(k), len(pool)), replace=False)
                for t in targets:
                    self._add_edge(uid, int(t))
