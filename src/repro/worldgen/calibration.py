"""Calibration validation: does a world match its own behaviour targets?

Preset configs declare the Table-5-style behaviour distributions
(public friend lists, searchability, message buttons, photo volumes for
adult-registered students).  This module *measures* those quantities on
a built world and compares them with the declared targets, so preset
tuning is a closed loop and regressions in the generator show up as
calibration drift rather than as mysterious attack-quality changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import List

from repro.osn.privacy import Audience, ProfileField

from .world import World


@dataclass(frozen=True)
class CalibrationRow:
    """One measured-vs-target comparison."""

    metric: str
    target: float
    measured: float

    @property
    def deviation(self) -> float:
        return self.measured - self.target

    @property
    def within(self) -> bool:
        """Inside an absolute tolerance scaled to the metric's size."""
        tolerance = max(0.08, 0.25 * abs(self.target))
        return abs(self.deviation) <= tolerance


@dataclass
class CalibrationReport:
    """All measured-vs-target rows for one world."""

    rows: List[CalibrationRow]

    def failing(self) -> List[CalibrationRow]:
        return [row for row in self.rows if not row.within]

    @property
    def ok(self) -> bool:
        return not self.failing()

    def describe(self) -> str:
        lines = ["calibration report:"]
        for row in self.rows:
            flag = "ok " if row.within else "OFF"
            lines.append(
                f"  [{flag}] {row.metric}: target {row.target:.3f}, "
                f"measured {row.measured:.3f} ({row.deviation:+.3f})"
            )
        return "\n".join(lines)


def calibrate(world: World, school_index: int = 0) -> CalibrationReport:
    """Measure a built world against its config's behaviour targets."""
    config = world.config
    net = world.network
    adult_students = [
        net.users[uid] for uid in world.adult_registered_students(school_index)
    ]
    rows: List[CalibrationRow] = []

    if adult_students:
        def fraction(predicate) -> float:
            return sum(1 for a in adult_students if predicate(a)) / len(adult_students)

        students_cfg = config.students
        rows.append(
            CalibrationRow(
                "adult students: public friend list",
                students_cfg.p_adult_friend_list_public,
                fraction(
                    lambda a: a.settings.audience_for(ProfileField.FRIEND_LIST)
                    is Audience.PUBLIC
                ),
            )
        )
        rows.append(
            CalibrationRow(
                "adult students: public search",
                students_cfg.p_adult_public_search,
                fraction(lambda a: a.settings.public_search),
            )
        )
        rows.append(
            CalibrationRow(
                "adult students: message button public",
                students_cfg.p_adult_message_public,
                fraction(
                    lambda a: a.settings.message_audience is Audience.PUBLIC
                ),
            )
        )
        rows.append(
            CalibrationRow(
                "adult students: relationship listed",
                students_cfg.p_adult_relationship,
                fraction(lambda a: a.profile.relationship_status is not None),
            )
        )
        rows.append(
            CalibrationRow(
                "adult students: interested-in listed",
                students_cfg.p_adult_interested_in,
                fraction(lambda a: a.profile.interested_in is not None),
            )
        )
        rows.append(
            CalibrationRow(
                "adult students: mean photos",
                students_cfg.adult_photo_mean,
                mean(a.profile.photo_count for a in adult_students),
            )
        )
        rows.append(
            CalibrationRow(
                "adult students: school listed",
                students_cfg.p_list_school,
                fraction(lambda a: bool(a.profile.high_schools)),
            )
        )

    truth = world.ground_truth(school_index)
    rows.append(
        CalibrationRow(
            "students: OSN adoption",
            config.adoption.p_student,
            truth.on_osn_count / truth.enrolled_count if truth.enrolled_count else 0.0,
        )
    )
    return CalibrationReport(rows=rows)
