"""Deterministic synthetic name generation.

The population generator needs plausible, *reproducible* names so that
crawled pages, stored profiles and reports read like a real study while
the whole world remains a function of one RNG seed.  Names are sampled
from fixed frequency-weighted pools; duplicates occur naturally, which
matters because the paper notes name collisions complicate ground-truth
matching.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.osn.profile import Gender, Name

FEMALE_FIRST = (
    "Emma", "Olivia", "Sophia", "Isabella", "Ava", "Emily", "Abigail",
    "Madison", "Mia", "Chloe", "Elizabeth", "Ella", "Addison", "Natalie",
    "Lily", "Grace", "Samantha", "Avery", "Sofia", "Aubrey", "Brooklyn",
    "Lillian", "Victoria", "Evelyn", "Hannah", "Alexis", "Charlotte",
    "Zoey", "Leah", "Amelia", "Zoe", "Hailey", "Layla", "Gabriella",
    "Nevaeh", "Kaylee", "Alyssa", "Anna", "Sarah", "Allison", "Savannah",
    "Ashley", "Audrey", "Taylor", "Brianna", "Aaliyah", "Riley", "Camila",
    "Khloe", "Claire", "Sophie", "Arianna", "Peyton", "Harper", "Alexa",
    "Makayla", "Julia", "Kylie", "Kayla", "Bella", "Katherine", "Lauren",
    "Gianna", "Maya", "Sydney", "Serenity", "Kimberly", "Mackenzie",
    "Autumn", "Jocelyn", "Faith", "Lucy", "Stella", "Jasmine", "Morgan",
    "Alexandra", "Trinity", "Molly", "Madelyn", "Scarlett", "Andrea",
    "Genesis", "Eva", "Ariana", "Madeline", "Brooke", "Caroline", "Bailey",
    "Melanie", "Kennedy", "Destiny", "Maria", "Naomi", "London", "Payton",
    "Lydia", "Ellie", "Mariah", "Aubree", "Kaitlyn", "Violet", "Rylee",
    "Lilly", "Angelina", "Katelyn", "Mya", "Paige", "Natalia", "Ruby",
    "Piper", "Annabelle", "Mary", "Jade", "Isabelle", "Liliana", "Nicole",
    "Rachel", "Vanessa", "Gabrielle", "Jessica", "Jordyn", "Reagan",
    "Kendall", "Sadie", "Valeria", "Brielle", "Lyla", "Izabella",
)

MALE_FIRST = (
    "Jacob", "Mason", "William", "Jayden", "Noah", "Michael", "Ethan",
    "Alexander", "Aiden", "Daniel", "Anthony", "Matthew", "Elijah",
    "Joshua", "Liam", "Andrew", "James", "David", "Benjamin", "Logan",
    "Christopher", "Joseph", "Jackson", "Gabriel", "Ryan", "Samuel",
    "John", "Nathan", "Lucas", "Christian", "Jonathan", "Caleb", "Dylan",
    "Landon", "Isaac", "Gavin", "Brayden", "Tyler", "Luke", "Evan",
    "Carter", "Nicholas", "Isaiah", "Owen", "Jack", "Jordan", "Brandon",
    "Wyatt", "Julian", "Aaron", "Jeremiah", "Kevin", "Hunter", "Cameron",
    "Connor", "Thomas", "Zachary", "Jaxon", "Henry", "Charles", "Adrian",
    "Eli", "Austin", "Robert", "Sebastian", "Xavier", "Jose", "Colton",
    "Dominic", "Cooper", "Brody", "Nolan", "Easton", "Blake", "Adam",
    "Carson", "Alex", "Levi", "Tristan", "Juan", "Justin", "Diego",
    "Bryson", "Damian", "Grayson", "Miles", "Oliver", "Parker", "Hayden",
    "Jason", "Ian", "Carlos", "Chase", "Josiah", "Vincent", "Cole",
    "Ayden", "Brady", "Luis", "Micah", "Kayden", "Jesus", "Bentley",
    "Sean", "Alejandro", "Kyle", "Marcus", "Max", "Preston", "Riley",
    "Antonio", "Bryce", "Asher", "Leo", "Victor", "Maxwell", "Brian",
    "Edward", "Patrick", "Declan", "Derek", "Eric", "Miguel", "Steven",
    "Timothy", "Jaden", "Emmanuel", "Giovanni", "Richard",
)

LAST_NAMES = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Miller", "Davis",
    "Garcia", "Rodriguez", "Wilson", "Martinez", "Anderson", "Taylor",
    "Thomas", "Hernandez", "Moore", "Martin", "Jackson", "Thompson",
    "White", "Lopez", "Lee", "Gonzalez", "Harris", "Clark", "Lewis",
    "Robinson", "Walker", "Perez", "Hall", "Young", "Allen", "Sanchez",
    "Wright", "King", "Scott", "Green", "Baker", "Adams", "Nelson",
    "Hill", "Ramirez", "Campbell", "Mitchell", "Roberts", "Carter",
    "Phillips", "Evans", "Turner", "Torres", "Parker", "Collins",
    "Edwards", "Stewart", "Flores", "Morris", "Nguyen", "Murphy",
    "Rivera", "Cook", "Rogers", "Morgan", "Peterson", "Cooper", "Reed",
    "Bailey", "Bell", "Gomez", "Kelly", "Howard", "Ward", "Cox", "Diaz",
    "Richardson", "Wood", "Watson", "Brooks", "Bennett", "Gray", "James",
    "Reyes", "Cruz", "Hughes", "Price", "Myers", "Long", "Foster",
    "Sanders", "Ross", "Morales", "Powell", "Sullivan", "Russell",
    "Ortiz", "Jenkins", "Gutierrez", "Perry", "Butler", "Barnes",
    "Fisher", "Henderson", "Coleman", "Simmons", "Patterson", "Jordan",
    "Reynolds", "Hamilton", "Graham", "Kim", "Gonzales", "Alexander",
    "Ramos", "Wallace", "Griffin", "West", "Cole", "Hayes", "Chavez",
    "Gibson", "Bryant", "Ellis", "Stevens", "Murray", "Ford", "Marshall",
    "Owens", "Mcdonald", "Harrison", "Ruiz", "Kennedy", "Wells",
    "Alvarez", "Woods", "Mendoza", "Castillo", "Olson", "Webb",
    "Washington", "Tucker", "Freeman", "Burns", "Henry", "Vasquez",
    "Snyder", "Simpson", "Crawford", "Jimenez", "Porter", "Mason",
    "Shaw", "Gordon", "Wagner", "Hunter", "Romero", "Hicks", "Dixon",
    "Hunt", "Palmer", "Robertson", "Black", "Holmes", "Stone", "Meyer",
    "Boyd", "Mills", "Warren", "Fox", "Rose", "Rice", "Moreno",
    "Schmidt", "Patel", "Ferguson", "Nichols", "Herrera", "Medina",
    "Ryan", "Fernandez", "Weaver", "Daniels", "Stephens", "Gardner",
    "Payne", "Kelley", "Dunn", "Pierce", "Arnold", "Tran", "Spencer",
    "Peters", "Hawkins", "Grant", "Hansen", "Castro", "Hoffman",
    "Hart", "Elliott", "Cunningham", "Knight", "Bradley", "Carroll",
    "Hudson", "Duncan", "Armstrong", "Berry", "Andrews", "Johnston",
    "Ray", "Lane", "Riley", "Carpenter", "Perkins", "Aguilar", "Silva",
    "Richards", "Willis", "Matthews", "Chapman", "Lawrence", "Garza",
    "Vargas", "Watkins", "Wheeler", "Larson", "Carlson", "Harper",
    "George", "Greene", "Burke", "Guzman", "Morrison", "Munoz", "Jacobs",
    "Obrien", "Lawson", "Franklin", "Lynch", "Bishop", "Carr", "Salazar",
    "Austin", "Mendez", "Gilbert", "Jensen", "Williamson", "Montgomery",
    "Harvey", "Oliver", "Howell", "Dean", "Hanson", "Weber", "Garrett",
    "Sims", "Burton", "Fuller", "Soto", "Mccoy", "Welch", "Chen",
)


class NameSampler:
    """Samples gendered names deterministically from a shared RNG."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def gender(self) -> Gender:
        """A person's gender, roughly balanced."""
        return Gender.FEMALE if self._rng.random() < 0.5 else Gender.MALE

    def first_name(self, gender: Gender) -> str:
        pool = FEMALE_FIRST if gender is Gender.FEMALE else MALE_FIRST
        return self._rng.choice(pool)

    def last_name(self) -> str:
        return self._rng.choice(LAST_NAMES)

    def sample(self, gender: Gender | None = None) -> Tuple[Name, Gender]:
        """A (name, gender) pair; gender drawn if not supplied."""
        resolved = gender if gender is not None else self.gender()
        first = self.first_name(resolved)
        return Name(first, self.last_name()), resolved

    def family_surname(self) -> str:
        """A surname shared by a household (students and their parents)."""
        return self.last_name()
