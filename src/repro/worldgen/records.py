"""Public records: the synthetic voter registry (paper, Section 2).

The paper's first consequential threat is data brokers enriching the
high-school profiles with public records: "by obtaining voter
registration records (which most states make available for a small
fee), the data broker can use the last name and city in the high-school
profiles to link the students to parents ... thereby determining the
street address of many of the students."

We generate that registry from the ground-truth population: adults
(18+) living in a city, with name, street address and birth year,
registered to vote with a realistic probability.  The registry is a
*public* data set — the linkage attack in ``repro.core.linkage`` may
use it freely, unlike the OSN's ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .population import Person, Population, Role

#: Roughly the fraction of US adults registered to vote.
DEFAULT_REGISTRATION_RATE = 0.70


@dataclass(frozen=True)
class VoterRecord:
    """One row of the purchased voter file."""

    first_name: str
    last_name: str
    street_address: str
    city: str
    birth_year: int


@dataclass
class VoterRegistry:
    """The purchasable voter file, indexed for linkage queries."""

    records: List[VoterRecord]

    def __post_init__(self) -> None:
        self._by_surname_city: Dict[Tuple[str, str], List[VoterRecord]] = {}
        for record in self.records:
            key = (record.last_name.lower(), record.city.lower())
            self._by_surname_city.setdefault(key, []).append(record)

    def __len__(self) -> int:
        return len(self.records)

    def lookup(self, last_name: str, city: str) -> List[VoterRecord]:
        """All registered voters with this surname in this city."""
        return list(self._by_surname_city.get((last_name.lower(), city.lower()), []))

    def lookup_person(
        self, first_name: str, last_name: str, city: str
    ) -> Optional[VoterRecord]:
        """An exact (first, last, city) match, if registered."""
        for record in self.lookup(last_name, city):
            if record.first_name.lower() == first_name.lower():
                return record
        return None


def build_voter_registry(
    population: Population,
    observation_year: float,
    registration_rate: float = DEFAULT_REGISTRATION_RATE,
    seed: int = 0,
) -> VoterRegistry:
    """Generate the voter file from the ground-truth population.

    Adults (18+ at observation time) with a known street address appear
    with probability ``registration_rate``.  Minors never appear —
    that is exactly why the linkage goes through parents.
    """
    rng = random.Random(seed)
    records: List[VoterRecord] = []
    for person in population.people:
        if person.street_address is None:
            continue
        if person.real_age(observation_year) < 18.0:
            continue
        if rng.random() >= registration_rate:
            continue
        records.append(
            VoterRecord(
                first_name=person.name.first,
                last_name=person.name.last,
                street_address=person.street_address,
                city=person.city,
                birth_year=int(person.birth_year_fraction),
            )
        )
    return VoterRegistry(records=records)
